#include "telemetry/metrics.hpp"

#include "campaign/json.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <thread>

namespace netcons::telemetry {

namespace {

/// Relaxed double accumulation (std::atomic<double> has no fetch_add until
/// C++20's atomic<floating>; a CAS loop is portable and uncontended in
/// practice because histogram records are spread across metrics).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

}  // namespace

Registry::Registry() : id_([] {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}()) {}

std::size_t Counter::shard_index() noexcept {
  thread_local const std::size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      static_cast<std::size_t>(kCounterShards);
  return index;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::record(double value) noexcept {
  // First bucket whose upper bound admits the sample; everything above the
  // last bound lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);  // heterogeneous: no key allocation on the hit path
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::string Registry::snapshot_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out += "{\n  \"schema\": \"netcons-metrics-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    campaign::json::append_escaped(out, name);
    out += ": " + std::to_string(counter->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    campaign::json::append_escaped(out, name);
    out += ": ";
    campaign::json::append_double(out, gauge->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    campaign::json::append_escaped(out, name);
    out += ": {\"bounds\": [";
    const auto& bounds = histogram->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out += ", ";
      campaign::json::append_double(out, bounds[i]);
    }
    out += "], \"counts\": [";
    const std::vector<std::uint64_t> counts = histogram->counts();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(counts[i]);
      total += counts[i];
    }
    out += "], \"count\": " + std::to_string(total) + ", \"sum\": ";
    campaign::json::append_double(out, histogram->sum());
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void Registry::write_snapshot(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file << snapshot_json();
  file.flush();
  if (!file) throw std::runtime_error("telemetry: cannot write metrics snapshot to " + path);
}

}  // namespace netcons::telemetry
