// Ambient telemetry: process-wide registry/tracer pointers plus the
// hot-path instrumentation macros.
//
// Telemetry is opt-in. By default both ambient pointers are null and every
// macro below collapses to a null check (one relaxed atomic load) — the
// instrumented hot paths cost ~nothing when telemetry is off. A tool that
// wants telemetry constructs a Registry and/or Tracer on its own stack,
// publishes them with set_registry()/set_tracer(), and clears them (set to
// nullptr) before the objects go out of scope. The engine and campaign code
// only ever read the ambient pointers; they never own telemetry objects.
//
// Compile-out: configuring with -DNETCONS_TELEMETRY=OFF (CMake option)
// defines NETCONS_TELEMETRY_DISABLED, which turns registry()/tracer() into
// constexpr nullptr and the macros into empty statements — the compiler
// deletes every instrumented site outright.
//
// Determinism contract: none of this touches any Rng or simulation state.
// Sampling decisions come from per-thread counters inside Tracer. The
// simulation's seed streams, outcomes, and summary bytes are identical with
// telemetry on or off (CI-gated).
#pragma once

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#include <cstdint>

namespace netcons::telemetry {

#if defined(NETCONS_TELEMETRY_DISABLED)

constexpr Registry* registry() noexcept { return nullptr; }
constexpr Tracer* tracer() noexcept { return nullptr; }
inline void set_registry(Registry* /*registry*/) noexcept {}
inline void set_tracer(Tracer* /*tracer*/) noexcept {}

#else

/// The ambient metrics registry, or null when telemetry is off.
[[nodiscard]] Registry* registry() noexcept;

/// The ambient tracer, or null when tracing is off.
[[nodiscard]] Tracer* tracer() noexcept;

/// Publish (or clear, with nullptr) the ambient registry. The caller keeps
/// ownership and must clear before the registry is destroyed.
void set_registry(Registry* registry) noexcept;

/// Publish (or clear, with nullptr) the ambient tracer. Same ownership
/// rules as set_registry().
void set_tracer(Tracer* tracer) noexcept;

#endif

}  // namespace netcons::telemetry

// Hot-path macros. All tolerate null ambient pointers; the *SPAN variants
// expand to a named local so the span covers the rest of the enclosing
// scope. Name/category arguments must be string literals (the tracer keeps
// the pointers).
#if defined(NETCONS_TELEMETRY_DISABLED)

#define NETCONS_TM_SPAN(var, name, cat) \
  do {                                  \
  } while (false)
#define NETCONS_TM_SAMPLED_SPAN(var, name, cat) \
  do {                                          \
  } while (false)
#define NETCONS_TM_COUNT(name, delta) \
  do {                                \
  } while (false)

#else

/// Unconditionally-recorded scoped span (e.g. one per pool job).
#define NETCONS_TM_SPAN(var, name, cat) \
  ::netcons::telemetry::Span var(::netcons::telemetry::tracer(), (name), (cat))

/// Scoped span subject to the tracer's sampling knob — for per-trial and
/// finer call sites where recording everything would swamp the trace.
#define NETCONS_TM_SAMPLED_SPAN(var, name, cat)                             \
  ::netcons::telemetry::Tracer* var##_tracer = ::netcons::telemetry::tracer(); \
  if (var##_tracer != nullptr && !var##_tracer->sample()) var##_tracer = nullptr; \
  ::netcons::telemetry::Span var(var##_tracer, (name), (cat))

/// Add `delta` to the ambient counter `name` (no-op when telemetry is off).
#define NETCONS_TM_COUNT(name, delta)                                     \
  do {                                                                    \
    ::netcons::telemetry::Registry* netcons_tm_reg =                      \
        ::netcons::telemetry::registry();                                 \
    if (netcons_tm_reg != nullptr) netcons_tm_reg->add((name), (delta));  \
  } while (false)

#endif
