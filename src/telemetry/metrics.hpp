// Lock-cheap metrics registry: counters, gauges, and fixed-bucket
// histograms, designed so the campaign thread pool can write from every
// worker without serializing on a shared lock.
//
// Counters are sharded: each increment lands on one of kCounterShards
// cache-line-isolated atomic slots chosen by a hash of the calling thread's
// id, so concurrent writers almost never touch the same line; a snapshot
// merges the shards. Histograms keep one relaxed atomic per bucket (bucket
// increments are already spread across addresses), and gauges are single
// relaxed atomics (set/load, no read-modify-write races to amortize).
//
// The JSON snapshot is byte-stable: metric names iterate in sorted order
// (std::map), integers print canonically, and doubles go through the same
// shortest-round-trip printer as the campaign summary documents
// (campaign/json.hpp). Two snapshots of the same registry state are
// byte-identical, which the telemetry tests enforce.
//
// Registration (name -> metric) takes a mutex, so call sites on hot paths
// should resolve their handle once and keep the reference; handles are
// stable for the registry's lifetime. The convenience add()/set() forms
// re-resolve per call and are meant for end-of-trial publication, not
// per-step loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace netcons::telemetry {

/// Monotone event count. add() is wait-free and safe from any thread.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    shards_[shard_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Merged total over all shards.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr int kCounterShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };

  /// Stable per-thread shard choice (cached in a thread_local so the hash
  /// is computed once per thread, not once per increment).
  [[nodiscard]] static std::size_t shard_index() noexcept;

  Shard shards_[kCounterShards];
};

/// Last-write-wins instantaneous value (trials/sec, queue depth, ...).
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts samples v <= bounds[i] (first
/// matching bound), with one implicit overflow bucket for v > bounds.back().
/// Bounds are sorted at construction and immutable afterwards.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<double> sum_{0.0};
};

/// Named metrics, created on first use and stable for the registry's
/// lifetime. Thread-safe; see the header comment for the locking contract.
class Registry {
 public:
  // Lookups are heterogeneous (string_view against a std::less<> map): the
  // hot-path literals ("engine.steps", ...) never allocate a key string --
  // per-trial publication costs a mutex and a map walk, nothing more.
  Registry();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// Returns the existing histogram if `name` is already registered (the
  /// first registration's bounds win; campaigns publish the same shapes
  /// every trial).
  [[nodiscard]] Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Convenience forms (per-call name lookup; fine off the hot path).
  void add(std::string_view name, std::uint64_t delta = 1) { counter(name).add(delta); }
  void set(std::string_view name, double value) { gauge(name).set(value); }

  /// Byte-stable JSON document of every metric's current value (sorted
  /// names, canonical number formatting).
  [[nodiscard]] std::string snapshot_json() const;

  /// Write snapshot_json() to `path`. Throws std::runtime_error on failure.
  void write_snapshot(const std::string& path) const;

  /// Process-unique, never-reused registry identity. Callers that publish
  /// the same metric names every trial key a thread_local handle cache on
  /// this id (an address would be unsafe: a new registry can reuse a freed
  /// one's address, and handles die with their registry).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  const std::uint64_t id_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace netcons::telemetry
