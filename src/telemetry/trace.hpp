// Scoped-span tracer emitting Chrome trace-event JSON.
//
// The output is the Trace Event Format's JSON-object form
// ({"traceEvents": [...]}), loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing: complete ("ph":"X") spans with microsecond timestamps
// relative to the tracer's construction, instant ("ph":"i") markers, and
// one metadata record per thread naming its track. Every thread that
// records through a tracer gets its own track (a small sequential tid
// assigned on first use — NOT the OS thread id, so traces are stable and
// compact across runs).
//
// Concurrency: each thread appends to its own buffer; the per-buffer mutex
// exists only so collection (to_json/write_json) can run while worker
// threads are still alive — appends never contend with each other. Span
// names/categories are expected to be string literals (the tracer stores
// the pointers).
//
// Sampling: set_sample_every(n) makes Tracer::sample() admit every n-th
// call per thread. Plain Span records unconditionally; sampled call sites
// (e.g. the per-trial span in the campaign hot loop) go through the
// NETCONS_TM_SAMPLED_SPAN macro in telemetry.hpp, which consults sample().
// The knob never draws from any Rng: telemetry must not perturb the
// simulation's seed streams.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace netcons::telemetry {

class Tracer {
 public:
  Tracer();

  /// Record every n-th sampled span per thread (0 and 1 both mean "all").
  void set_sample_every(std::uint64_t n) noexcept {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  /// Whether this thread's next sampled span should be recorded (advances
  /// the thread's sampling phase; uses no randomness).
  [[nodiscard]] bool sample() noexcept;

  /// Microseconds since tracer construction (the trace's time origin).
  [[nodiscard]] double now_us() const noexcept {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - origin_)
        .count();
  }

  /// Record a complete span on the calling thread's track. `name` and
  /// `cat` must outlive the tracer (string literals in practice).
  void complete(const char* name, const char* cat, double ts_us, double dur_us);

  /// Record an instant (zero-duration) marker on the calling thread's track.
  void instant(const char* name, const char* cat);

  /// The whole trace as a Chrome trace-event JSON document.
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`. Throws std::runtime_error on failure.
  void write_json(const std::string& path) const;

  /// Total events recorded so far (tests and capacity diagnostics).
  [[nodiscard]] std::size_t event_count() const;

 private:
  struct Event {
    const char* name = nullptr;
    const char* cat = nullptr;
    double ts_us = 0.0;
    double dur_us = 0.0;
    char phase = 'X';
  };

  struct Buffer {
    std::mutex mutex;  ///< Taken per append and during collection.
    int tid = 0;
    std::vector<Event> events;
  };

  [[nodiscard]] Buffer& local_buffer();

  const std::uint64_t id_;  ///< Distinguishes tracer instances in thread_local caches.
  std::chrono::steady_clock::time_point origin_;
  std::atomic<std::uint64_t> sample_every_{1};
  mutable std::mutex buffers_mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// RAII span: records [construction, destruction) as a complete event on
/// the calling thread's track. A null tracer makes every operation a no-op,
/// so call sites can pass telemetry::tracer() unconditionally.
class Span {
 public:
  explicit Span(Tracer* tracer, const char* name, const char* cat = "netcons") noexcept
      : tracer_(tracer), name_(name), cat_(cat) {
    if (tracer_ != nullptr) start_us_ = tracer_->now_us();
  }
  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->complete(name_, cat_, start_us_, tracer_->now_us() - start_us_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  const char* cat_;
  double start_us_ = 0.0;
};

}  // namespace netcons::telemetry
