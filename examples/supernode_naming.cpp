// Theorem 18 in action: organize an anonymous population into named
// supernodes (lines of ~log k nodes each), then use the names to realize a
// construction that is impossible for anonymous constant-state nodes alone:
// the paper's example of partitioning supernodes into triangles by name
// arithmetic ("id multiple of 3 connects to id+2, else to id-1").
#include "generic/supernodes.hpp"
#include "graph/predicates.hpp"
#include "util/table.hpp"

#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  using namespace netcons;
  const int n = argc > 1 ? std::atoi(argv[1]) : 24;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  generic::SupernodeConstructor ctor(n, seed);
  const auto report = ctor.run_until_stable(400'000'000);
  if (!report.stabilized) {
    std::cerr << "did not stabilize\n";
    return 1;
  }

  std::cout << "organized " << n << " anonymous nodes into " << report.supernode_count
            << " named supernodes in " << report.steps_executed << " interactions\n\n";
  TextTable table({"supernode name", "line length", "binary name"});
  for (std::size_t i = 0; i < report.names.size(); ++i) {
    std::string bin;
    for (int bit = 7; bit >= 0; --bit) bin += ((report.names[i] >> bit) & 1) ? '1' : '0';
    table.add_row({TextTable::integer(static_cast<std::uint64_t>(report.names[i])),
                   TextTable::integer(static_cast<std::uint64_t>(
                       report.line_lengths[i])),
                   bin});
  }
  std::cout << table;

  // Supernode-level overlay: triangles by name arithmetic (Section 6.4).
  const int k = report.supernode_count;
  Graph overlay(k);
  for (int id = 0; id < k; ++id) {
    if (id % 3 == 0 && id + 2 < k) {
      overlay.add_edge(id, id + 2);
    } else if (id % 3 != 0) {
      overlay.add_edge(id, id - 1);
    }
  }
  int triangles = 0;
  for (const auto& comp : overlay.components()) {
    if (comp.size() == 3) ++triangles;
  }
  std::cout << "\nsupernode overlay: " << triangles << " triangles from " << k
            << " named supernodes (parallel, name-arithmetic construction)\n"
            << "each supernode's line provides " << report.leader_line_length
            << " cells ~ log2(" << k << ") bits of local memory\n";
  return 0;
}
