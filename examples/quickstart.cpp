// Quickstart: run the paper's introductory example -- the 2-state
// Global-Star protocol -- on a population of 25 nodes and watch it
// stabilize to a spanning star.
//
//   $ ./examples/quickstart [n] [seed] [engine]
//
// Demonstrates the core API: ProtocolSpec factories, the pluggable Engine
// interface (naive reference engine vs. the census fast path), sound
// stability detection, and output-graph validation.
#include "core/census_engine.hpp"
#include "core/trace.hpp"
#include "graph/predicates.hpp"
#include "protocols/protocols.hpp"

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

int main(int argc, char** argv) {
  using namespace netcons;
  const int n = argc > 1 ? std::atoi(argv[1]) : 25;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  const std::string engine_name = argc > 3 ? argv[3] : "naive";

  // Every protocol in the library ships as a ProtocolSpec: the rule table
  // plus its target predicate, stability certificate (when stable
  // configurations are not quiescent), and a step budget from its proven
  // running-time bound.
  const ProtocolSpec spec = protocols::global_star();
  std::cout << spec.protocol.describe() << '\n';

  // Every execution core implements core/engine.hpp; the naive engine runs
  // the model verbatim, the census engine skips ineffective interactions
  // while sampling the same convergence-step distribution.
  std::unique_ptr<Engine> engine;
  if (engine_name == "census") {
    engine = std::make_unique<CensusEngine>(spec.protocol, n, seed);
  } else if (engine_name == "naive") {
    engine = std::make_unique<NaiveEngine>(spec.protocol, n, seed);
  } else {
    std::cerr << "unknown engine '" << engine_name << "' (engines: naive, census)\n";
    return 2;
  }
  Engine& sim = *engine;
  Engine::StabilityOptions options;
  options.max_steps = spec.max_steps(n);
  options.certificate = spec.certificate;

  const ConvergenceReport report = sim.run_until_stable(options);
  if (!report.stabilized) {
    std::cerr << "did not stabilize within " << options.max_steps << " steps\n";
    return 1;
  }

  const Graph star = sim.world().output_graph(spec.protocol);
  int center_degree = 0;
  for (int u = 0; u < star.order(); ++u) center_degree = std::max(center_degree, star.degree(u));
  std::cout << "stabilized after " << report.convergence_step << " interactions ("
            << report.steps_executed << " simulated)\n"
            << "final census: " << census_summary(spec.protocol, sim.world()) << '\n'
            << "output is a spanning star: " << (is_spanning_star(star) ? "yes" : "NO") << '\n'
            << "center degree: " << center_degree << " of " << n - 1 << " peripherals\n";
  return is_spanning_star(star) ? 0 : 1;
}
