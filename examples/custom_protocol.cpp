// Authoring your own network constructor.
//
// We build the paper's maximum-matching variation from Section 3.3 --
// (a, a, 0) -> (b, b, 1) -- extend it into a "paired-star" protocol of our
// own, validate it with the builder, run it under two different fair
// schedulers and both execution engines, and verify the stabilized
// outputs. This is the end-to-end workflow for experimenting with new
// rule sets.
#include "core/census_engine.hpp"
#include "graph/predicates.hpp"
#include "sched/schedulers.hpp"
#include "util/table.hpp"

#include <iostream>
#include <memory>

int main() {
  using namespace netcons;

  // --- Step 1: define states and rules with full validation. ---
  ProtocolBuilder builder("Paired-Star");
  const StateId single = builder.add_state("single");
  const StateId head = builder.add_state("head");    // pair representative
  const StateId tail = builder.add_state("tail");    // its partner
  builder.set_initial(single);
  // Two singles pair up (the matching rule; who becomes head is the model's
  // symmetry coin).
  builder.add_rule(single, single, false, head, tail, true);
  // Heads form a star among themselves: the first head to "win" keeps
  // absorbing other heads as extra tails.
  builder.add_rule(head, head, false, head, tail, true);
  const Protocol protocol = builder.build();
  std::cout << protocol.describe() << '\n';

  // --- Step 2: run under the uniform random scheduler. ---
  Simulator uniform_sim(protocol, 17, 3);
  const auto report = uniform_sim.run_until_stable();
  std::cout << "uniform scheduler: stabilized = " << report.stabilized
            << ", quiescent = " << report.quiescent << ", steps = "
            << report.convergence_step << '\n';

  // --- Step 3: same protocol under a different fair scheduler; correctness
  // must be scheduler independent (only timing changes). ---
  Simulator round_sim(protocol, 17, 3, std::make_unique<RandomPermutationScheduler>());
  const auto report2 = round_sim.run_until_stable();
  std::cout << "permutation scheduler: stabilized = " << report2.stabilized
            << ", steps = " << report2.convergence_step << '\n';

  // --- Step 3b: the census engine skips ineffective encounters while
  // sampling the same convergence-step distribution (core/census_engine.hpp);
  // custom protocols get the fast path for free. ---
  CensusEngine census_sim(protocol, 17, 3);
  const auto report3 = census_sim.run_until_stable();
  std::cout << "census engine: stabilized = " << report3.stabilized << ", steps = "
            << report3.convergence_step << " (" << census_sim.effective_steps()
            << " executed)\n";

  // --- Step 4: inspect the stabilized output. ---
  const Graph g = uniform_sim.world().output_graph(protocol);
  TextTable table({"property", "value"});
  table.add_row({"nodes", TextTable::integer(static_cast<std::uint64_t>(g.order()))});
  table.add_row({"active edges", TextTable::integer(static_cast<std::uint64_t>(g.edge_count()))});
  int heads_left = uniform_sim.world().census(head);
  table.add_row({"surviving heads", TextTable::integer(static_cast<std::uint64_t>(heads_left))});
  table.add_row({"spanning network",
                 is_spanning_network(g) ? "yes (n odd leaves one single)" : "almost"});
  std::cout << '\n' << table;
  return 0;
}
