// The paper's motivating scenario (Section 1.1): nanoscale devices injected
// into a circulatory system. The devices cannot control their mobility --
// the blood flow (here: the uniform random scheduler) decides who meets
// whom -- yet they must self-organize to be useful:
//
//   1. A spanning star: one device becomes the aggregation hub that every
//      other device reports to (the paper's introductory construction).
//   2. A spanning line: the backbone ordering that Section 6 exploits to
//      simulate a Turing machine -- i.e., the precondition for the devices
//      to run arbitrary distributed computations.
//   3. Partition into c-cliques: non-interfering treatment cells of fixed
//      size c that can operate independently (Section 5's motivation for
//      many small components).
//
// Each stage reports its convergence time in interactions, illustrating the
// cost ordering the paper proves: stars (~n^2 log n) < lines (n^3..n^5)
// under the same contact dynamics.
#include "analysis/experiment.hpp"
#include "graph/predicates.hpp"
#include "protocols/protocols.hpp"
#include "util/table.hpp"

#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  using namespace netcons;
  const int n = argc > 1 ? std::atoi(argv[1]) : 21;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  std::cout << "nanomedicine scenario: " << n
            << " devices drifting in a well-mixed medium\n\n";
  TextTable table({"stage", "protocol", "states", "interactions", "achieved"});

  {
    const auto spec = protocols::global_star();
    const auto r = analysis::run_trial(spec, n, seed);
    table.add_row({"aggregation hub", spec.protocol.name(),
                   TextTable::integer(static_cast<std::uint64_t>(spec.protocol.state_count())),
                   TextTable::integer(r.convergence_step),
                   r.stabilized && r.target_ok ? "spanning star" : "FAILED"});
  }
  {
    const auto spec = protocols::fast_global_line();
    const auto r = analysis::run_trial(spec, n, seed + 1);
    table.add_row({"compute backbone", spec.protocol.name(),
                   TextTable::integer(static_cast<std::uint64_t>(spec.protocol.state_count())),
                   TextTable::integer(r.convergence_step),
                   r.stabilized && r.target_ok ? "spanning line" : "FAILED"});
  }
  {
    const auto spec = protocols::c_cliques(3);
    const auto r = analysis::run_trial(spec, n, seed + 2);
    table.add_row({"treatment cells", spec.protocol.name(),
                   TextTable::integer(static_cast<std::uint64_t>(spec.protocol.state_count())),
                   TextTable::integer(r.convergence_step),
                   r.stabilized && r.target_ok ? "clique partition" : "FAILED"});
  }

  std::cout << table
            << "\nAll three organizations emerged from identical, anonymous devices\n"
            << "with no control over their own mobility -- only local pairwise rules.\n";
  return 0;
}
