// Graph replication as a pipeline (Protocol 9): seed a population with an
// input network on V1, let the randomized replication protocol copy it onto
// fresh nodes, then re-run the copy as the next stage's input -- the
// paper's vision of structures that reproduce themselves through local
// interactions alone.
#include "analysis/experiment.hpp"
#include "core/census_engine.hpp"
#include "graph/isomorphism.hpp"
#include "graph/random_graphs.hpp"
#include "protocols/protocols.hpp"

#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  using namespace netcons;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  // Generation 0: a random connected template of 5 nodes.
  Rng rng(seed);
  Graph current = sample_bounded_degree_connected(5, 3, rng);
  std::cout << "generation 0: " << current.order() << " nodes, " << current.edge_count()
            << " edges\n";

  for (int generation = 1; generation <= 3; ++generation) {
    const auto spec = protocols::replication(current);
    const int population = 2 * current.order() + 1;
    // Replication runs its eternal-leader certificate under the census
    // engine: the custom input graph lands through mutable_world() and the
    // engine rebuilds its tables before sampling.
    CensusEngine sim(spec.protocol, population, rng.split());
    spec.initialize(sim.mutable_world());

    Engine::StabilityOptions options;
    options.max_steps = spec.max_steps(population);
    options.certificate = spec.certificate;
    const auto report = sim.run_until_stable(options);
    if (!report.stabilized) {
      std::cerr << "generation " << generation << " failed to stabilize\n";
      return 1;
    }

    // Extract the replica from the V2 nodes.
    const Graph output = sim.world().output_graph(spec.protocol);
    std::vector<int> copied;
    for (int u = 0; u < output.order(); ++u) {
      if (output.degree(u) > 0) copied.push_back(u);
    }
    const Graph replica = output.induced(copied);
    const bool faithful = are_isomorphic(replica, current);
    std::cout << "generation " << generation << ": copied in " << report.convergence_step
              << " interactions; replica " << (faithful ? "isomorphic" : "CORRUPTED")
              << " (" << replica.order() << " nodes, " << replica.edge_count() << " edges)\n";
    if (!faithful) return 1;
    current = replica;  // the copy becomes the next template
  }
  std::cout << "three faithful generations -- replication is heritable.\n";
  return 0;
}
