#include "generic/no_waste.hpp"

#include "graph/predicates.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace netcons::generic {
namespace {

using netcons::tm::even_edges_language;
using netcons::tm::has_triangle_language;

TEST(NoWaste, WholePopulationIsTheOutput) {
  NoWasteConstructor ctor(even_edges_language(), 10, 3);
  const auto report = ctor.run_until_stable(500'000'000);
  ASSERT_TRUE(report.stabilized);
  EXPECT_EQ(report.useful_space, 10);  // no waste
  EXPECT_EQ(report.output.order(), 10);
  EXPECT_EQ(report.output.edge_count() % 2, 0);
  EXPECT_GE(report.tm_subgraph_order, 3);
}

TEST(NoWaste, EmbeddedTmSubgraphIsBoundedDegreeConnected) {
  // The S part of the output must contain the random connected subgraph of
  // max degree <= d that hosts the TM (condition (i) of Theorem 17).
  // We verify the constructed S-internal structure: connected and capped
  // once the edges to the rest are ignored. Since S's identity is internal,
  // we check the weaker public consequence: the full output contains at
  // least one connected induced subgraph of logarithmic order -- by
  // construction the report's tm_subgraph_order nodes form one.
  NoWasteConstructor ctor(even_edges_language(), 12, 7, /*max_degree=*/3);
  const auto report = ctor.run_until_stable(500'000'000);
  ASSERT_TRUE(report.stabilized);
  EXPECT_LE(report.tm_subgraph_order, 6);  // ~log n, not linear
}

class NoWasteSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NoWasteSweep, StabilizesAcrossSizesAndSeeds) {
  const auto [n, seed] = GetParam();
  NoWasteConstructor ctor(even_edges_language(), n,
                          netcons::trial_seed(27000, static_cast<std::uint64_t>(seed)));
  const auto report = ctor.run_until_stable(1'000'000'000);
  ASSERT_TRUE(report.stabilized) << "n=" << n << " seed=" << seed;
  EXPECT_EQ(report.output.order(), n);
  EXPECT_EQ(report.output.edge_count() % 2, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NoWasteSweep,
                         ::testing::Combine(::testing::Values(8, 10, 12),
                                            ::testing::Values(1, 2)));

TEST(NoWaste, HasTriangleLanguage) {
  NoWasteConstructor ctor(has_triangle_language(), 10, 17);
  const auto report = ctor.run_until_stable(500'000'000);
  ASSERT_TRUE(report.stabilized);
  EXPECT_TRUE(has_triangle_language().decide(report.output));
}

TEST(NoWaste, SpaceAuditTripsOnLinearLanguages) {
  NoWasteConstructor ctor(netcons::tm::connected_language(), 12, 7, /*max_degree=*/3,
                          /*space_bits_per_cell=*/1);
  EXPECT_THROW((void)ctor.run_until_stable(500'000'000), std::logic_error);
}

TEST(NoWaste, ValidatesArguments) {
  EXPECT_THROW(NoWasteConstructor(even_edges_language(), 4, 1), std::invalid_argument);
  EXPECT_THROW(NoWasteConstructor(even_edges_language(), 10, 1, /*max_degree=*/1),
               std::invalid_argument);
}

TEST(NoWaste, DeterministicGivenSeed) {
  NoWasteConstructor a(even_edges_language(), 9, 99);
  NoWasteConstructor b(even_edges_language(), 9, 99);
  const auto ra = a.run_until_stable(500'000'000);
  const auto rb = b.run_until_stable(500'000'000);
  ASSERT_TRUE(ra.stabilized);
  EXPECT_EQ(ra.steps_executed, rb.steps_executed);
  EXPECT_EQ(ra.output, rb.output);
}

}  // namespace
}  // namespace netcons::generic
