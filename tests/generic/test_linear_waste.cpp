#include "generic/linear_waste.hpp"

#include "graph/predicates.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace netcons::generic {
namespace {

using netcons::tm::connected_language;
using netcons::tm::even_edges_language;
using netcons::tm::has_triangle_language;

TEST(LinearWaste, ConstructsAConnectedGraphOnHalfTheNodes) {
  LinearWasteConstructor ctor(connected_language(), 10, 7);
  const auto report = ctor.run_until_stable(80'000'000);
  ASSERT_TRUE(report.stabilized);
  EXPECT_EQ(report.output.order(), 5);  // floor(10/2) useful space
  EXPECT_TRUE(netcons::is_connected(report.output));
  EXPECT_GE(report.draw_passes, 1);
  EXPECT_LE(report.convergence_step, report.steps_executed);
}

TEST(LinearWaste, OddPopulationWastesOneNode) {
  LinearWasteConstructor ctor(even_edges_language(), 9, 11);
  const auto report = ctor.run_until_stable(80'000'000);
  ASSERT_TRUE(report.stabilized);
  EXPECT_EQ(report.output.order(), 4);  // floor(9/2)
  EXPECT_EQ(report.output.edge_count() % 2, 0);
}

class LinearWasteSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LinearWasteSweep, EvenEdgesLanguageAcrossSizesAndSeeds) {
  const auto [n, seed] = GetParam();
  LinearWasteConstructor ctor(even_edges_language(), n,
                              netcons::trial_seed(21000, static_cast<std::uint64_t>(seed)));
  const auto report = ctor.run_until_stable(200'000'000);
  ASSERT_TRUE(report.stabilized) << "n=" << n << " seed=" << seed;
  EXPECT_EQ(report.output.order(), n / 2);
  EXPECT_EQ(report.output.edge_count() % 2, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LinearWasteSweep,
                         ::testing::Combine(::testing::Values(6, 8, 10, 12),
                                            ::testing::Values(1, 2)));

TEST(LinearWaste, RejectionLoopRetriesUntilAccept) {
  // has-triangle on 5 D-nodes is rejected with decent probability under
  // G(5, 1/2), so multi-pass executions are common; verify the retry loop
  // converges and the accepted graph is in the language.
  int multi_pass_seen = 0;
  for (int seed = 0; seed < 6; ++seed) {
    LinearWasteConstructor ctor(has_triangle_language(), 10,
                                netcons::trial_seed(22000, static_cast<std::uint64_t>(seed)));
    const auto report = ctor.run_until_stable(200'000'000);
    ASSERT_TRUE(report.stabilized) << seed;
    EXPECT_TRUE(has_triangle_language().decide(report.output));
    if (report.draw_passes > 1) ++multi_pass_seen;
  }
  EXPECT_GE(multi_pass_seen, 1);
}

TEST(LinearWaste, SpaceAuditRejectsSuperLinearLanguages) {
  // A fake language demanding quadratic workspace must trip the Theorem 14
  // budget check.
  netcons::tm::GraphLanguage greedy;
  greedy.name = "quadratic-hog";
  greedy.decide = [](const Graph&) { return true; };
  greedy.workspace_bits = [](int n) {
    return static_cast<std::size_t>(n) * static_cast<std::size_t>(n) * 64;
  };
  greedy.space_class = "O(n^2)";
  LinearWasteConstructor ctor(greedy, 8, 3);
  EXPECT_THROW((void)ctor.run_until_stable(10'000'000), std::logic_error);
}

TEST(LinearWaste, RequiresMinimumPopulation) {
  EXPECT_THROW(LinearWasteConstructor(even_edges_language(), 3, 1), std::invalid_argument);
}

TEST(LinearWaste, DeterministicGivenSeed) {
  LinearWasteConstructor a(even_edges_language(), 8, 123);
  LinearWasteConstructor b(even_edges_language(), 8, 123);
  const auto ra = a.run_until_stable(100'000'000);
  const auto rb = b.run_until_stable(100'000'000);
  ASSERT_TRUE(ra.stabilized);
  ASSERT_TRUE(rb.stabilized);
  EXPECT_EQ(ra.steps_executed, rb.steps_executed);
  EXPECT_EQ(ra.output, rb.output);
}

}  // namespace
}  // namespace netcons::generic
