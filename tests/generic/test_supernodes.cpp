#include "generic/supernodes.hpp"

#include "graph/predicates.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace netcons::generic {
namespace {

TEST(Supernodes, PhaseBoundaryPopulationGivesUniformLines) {
  // n = 24 = 2^3 * 3 is exactly the end of phase 3: 8 lines of length 3.
  SupernodeConstructor ctor(24, 5);
  const auto report = ctor.run_until_stable(200'000'000);
  ASSERT_TRUE(report.stabilized);
  EXPECT_EQ(report.supernode_count, 8);
  for (int len : report.line_lengths) EXPECT_EQ(len, 3);
}

TEST(Supernodes, NamesAreUniqueAndContiguous) {
  SupernodeConstructor ctor(24, 9);
  const auto report = ctor.run_until_stable(200'000'000);
  ASSERT_TRUE(report.stabilized);
  std::set<int> names(report.names.begin(), report.names.end());
  EXPECT_EQ(names.size(), report.names.size());
  EXPECT_EQ(*names.begin(), 0);
  EXPECT_EQ(*names.rbegin(), report.supernode_count - 1);
}

class SupernodeSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SupernodeSweep, AllNodesAreOrganized) {
  const auto [n, seed] = GetParam();
  SupernodeConstructor ctor(n, netcons::trial_seed(23000, static_cast<std::uint64_t>(seed)));
  const auto report = ctor.run_until_stable(400'000'000);
  ASSERT_TRUE(report.stabilized) << "n=" << n;

  // Every node belongs to the single surviving structure.
  int total = 0;
  for (int len : report.line_lengths) total += len;
  EXPECT_EQ(total, n);

  // Lines are lines: hub edges + internal path edges only.
  EXPECT_GE(report.supernode_count, 4);
  // Line lengths differ by at most one except a single partial line under
  // construction when the free pool ran dry.
  int shorter_than_leader = 0;
  for (int len : report.line_lengths) {
    EXPECT_LE(len, report.leader_line_length);
    if (len < report.leader_line_length - 1) ++shorter_than_leader;
  }
  EXPECT_LE(shorter_than_leader, 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SupernodeSweep,
                         ::testing::Combine(::testing::Values(8, 12, 17, 24, 33, 64),
                                            ::testing::Values(1, 2)));

TEST(Supernodes, MemoryIsLogarithmicInCount) {
  // Theorem 18: k supernodes of length ~log k. At phase ends, length j and
  // count 2^j satisfy length == log2(count) exactly.
  SupernodeConstructor ctor(64, 3);  // 2^4 * 4 = 64: end of phase 4
  const auto report = ctor.run_until_stable(400'000'000);
  ASSERT_TRUE(report.stabilized);
  EXPECT_EQ(report.supernode_count, 16);
  EXPECT_EQ(report.leader_line_length, 4);
}

TEST(Supernodes, StructureGraphIsHubPlusPaths) {
  SupernodeConstructor ctor(24, 13);
  const auto report = ctor.run_until_stable(200'000'000);
  ASSERT_TRUE(report.stabilized);
  const Graph& g = report.structure;
  EXPECT_TRUE(netcons::is_connected(g));
  // Edge count: internal path edges (sum of len-1) + hub edges (k - 1).
  int expected_edges = report.supernode_count - 1;
  for (int len : report.line_lengths) expected_edges += len - 1;
  EXPECT_EQ(g.edge_count(), expected_edges);
}

TEST(Supernodes, RejectsTinyPopulations) {
  EXPECT_THROW(SupernodeConstructor(4, 1), std::invalid_argument);
}

TEST(Supernodes, DeterministicGivenSeed) {
  SupernodeConstructor a(17, 321);
  SupernodeConstructor b(17, 321);
  const auto ra = a.run_until_stable(200'000'000);
  const auto rb = b.run_until_stable(200'000'000);
  EXPECT_EQ(ra.steps_executed, rb.steps_executed);
  EXPECT_EQ(ra.line_lengths, rb.line_lengths);
}

}  // namespace
}  // namespace netcons::generic
