#include "generic/log_waste.hpp"

#include "graph/predicates.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace netcons::generic {
namespace {

using netcons::tm::even_edges_language;
using netcons::tm::max_degree_language;
using netcons::tm::triangle_free_language;

TEST(LogWaste, ConstructsEvenEdgeGraphWithLogWaste) {
  LogWasteConstructor ctor(even_edges_language(), 12, 3);
  const auto report = ctor.run_until_stable(300'000'000);
  ASSERT_TRUE(report.stabilized);
  EXPECT_EQ(report.output.edge_count() % 2, 0);
  // Memory line is ~log n, useful space is the rest.
  EXPECT_GE(report.memory_length, 2);
  EXPECT_LE(report.memory_length, 5);
  EXPECT_EQ(report.useful_space + report.memory_length, 12);
}

class LogWasteSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LogWasteSweep, StabilizesAcrossSizesAndSeeds) {
  const auto [n, seed] = GetParam();
  LogWasteConstructor ctor(even_edges_language(), n,
                           netcons::trial_seed(25000, static_cast<std::uint64_t>(seed)));
  const auto report = ctor.run_until_stable(500'000'000);
  ASSERT_TRUE(report.stabilized) << "n=" << n << " seed=" << seed;
  EXPECT_EQ(report.output.edge_count() % 2, 0);
  EXPECT_EQ(report.output.order(), report.useful_space);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LogWasteSweep,
                         ::testing::Combine(::testing::Values(8, 10, 14),
                                            ::testing::Values(1, 2)));

TEST(LogWaste, LogSpaceLanguagesOnly) {
  // O(n)-space languages exceed the memory line's capacity and trip the
  // Theorem 16 audit. (At test scale the asymptotic violation is exposed by
  // granting a single bit per memory cell; the default 32 bits/cell only
  // trips at population sizes too large to simulate in a unit test.)
  LogWasteConstructor ctor(netcons::tm::connected_language(), 12, 7,
                           /*space_bits_per_cell=*/1);
  EXPECT_THROW((void)ctor.run_until_stable(500'000'000), std::logic_error);
}

TEST(LogWaste, TriangleFreeLanguage) {
  LogWasteConstructor ctor(triangle_free_language(), 10, 17);
  const auto report = ctor.run_until_stable(300'000'000);
  ASSERT_TRUE(report.stabilized);
  EXPECT_TRUE(triangle_free_language().decide(report.output));
}

TEST(LogWaste, MaxDegreeLanguageMayNeedManyPasses) {
  LogWasteConstructor ctor(max_degree_language(3), 9, 23);
  const auto report = ctor.run_until_stable(300'000'000);
  ASSERT_TRUE(report.stabilized);
  EXPECT_TRUE(netcons::has_max_degree(report.output, 3));
  EXPECT_GE(report.draw_passes, 1);
}

TEST(LogWaste, DeterministicGivenSeed) {
  LogWasteConstructor a(even_edges_language(), 9, 55);
  LogWasteConstructor b(even_edges_language(), 9, 55);
  const auto ra = a.run_until_stable(300'000'000);
  const auto rb = b.run_until_stable(300'000'000);
  ASSERT_TRUE(ra.stabilized);
  EXPECT_EQ(ra.steps_executed, rb.steps_executed);
  EXPECT_EQ(ra.output, rb.output);
}

}  // namespace
}  // namespace netcons::generic
