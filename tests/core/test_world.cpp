#include "core/world.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

Protocol two_state() {
  ProtocolBuilder b("two");
  const StateId a = b.add_state("a");
  const StateId c = b.add_state("c");
  b.set_initial(a);
  b.add_rule(a, a, false, c, c, true);
  return b.build();
}

TEST(World, InitialConfiguration) {
  const Protocol p = two_state();
  World w(p, 5);
  EXPECT_EQ(w.size(), 5);
  EXPECT_EQ(w.census(0), 5);
  EXPECT_EQ(w.census(1), 0);
  EXPECT_EQ(w.active_edge_count(), 0);
  for (int u = 0; u < 5; ++u) {
    EXPECT_EQ(w.state(u), p.initial_state());
    EXPECT_EQ(w.active_degree(u), 0);
  }
}

TEST(World, CensusTracksStateChanges) {
  World w(two_state(), 4);
  w.set_state(0, 1);
  w.set_state(1, 1);
  EXPECT_EQ(w.census(0), 2);
  EXPECT_EQ(w.census(1), 2);
  w.set_state(0, 0);
  EXPECT_EQ(w.census(0), 3);
  // Setting the same state is a no-op.
  w.set_state(0, 0);
  EXPECT_EQ(w.census(0), 3);
}

TEST(World, EdgeAndDegreeBookkeeping) {
  World w(two_state(), 4);
  EXPECT_TRUE(w.set_edge(0, 2, true));
  EXPECT_FALSE(w.set_edge(0, 2, true));
  EXPECT_TRUE(w.edge(2, 0));
  EXPECT_EQ(w.active_degree(0), 1);
  EXPECT_EQ(w.active_degree(2), 1);
  EXPECT_EQ(w.active_edge_count(), 1);
  EXPECT_EQ(w.active_neighbors(0), std::vector<int>{2});
  EXPECT_TRUE(w.set_edge(0, 2, false));
  EXPECT_EQ(w.active_edge_count(), 0);
}

TEST(World, ActiveGraphExtraction) {
  World w(two_state(), 4);
  w.set_edge(0, 1, true);
  w.set_edge(2, 3, true);
  const Graph g = w.active_graph();
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(World, OutputGraphFiltersNonOutputStates) {
  ProtocolBuilder b("filtered");
  const StateId a = b.add_state("a");
  const StateId c = b.add_state("c");
  b.set_initial(a);
  b.set_output_states({c});
  b.add_rule(a, a, false, c, c, true);
  const Protocol p = b.build();

  World w(p, 4);
  w.set_edge(0, 1, true);
  w.set_edge(1, 2, true);
  w.set_state(0, c);
  w.set_state(1, c);
  const Graph out = w.output_graph(p);
  // Only nodes 0 and 1 are in Qout; the 0-1 edge survives, 1-2 does not.
  EXPECT_EQ(out.order(), 2);
  EXPECT_EQ(out.edge_count(), 1);
}

TEST(World, NodesWhere) {
  World w(two_state(), 5);
  w.set_state(2, 1);
  w.set_state(4, 1);
  const auto picked = w.nodes_where([](StateId s) { return s == 1; });
  EXPECT_EQ(picked, (std::vector<int>{2, 4}));
}

TEST(World, RejectsEmptyPopulation) {
  const Protocol p = two_state();
  EXPECT_THROW(World(p, 0), std::invalid_argument);
}

TEST(World, KillRemovesNodeEdgesCensusAndOutput) {
  const Protocol p = two_state();
  World w(p, 4);
  w.set_edge(0, 1, true);
  w.set_edge(0, 2, true);
  w.set_edge(2, 3, true);
  ASSERT_EQ(w.alive_count(), 4);

  w.kill(0);
  EXPECT_EQ(w.alive_count(), 3);
  EXPECT_EQ(w.dead_count(), 1);
  EXPECT_FALSE(w.alive(0));
  EXPECT_TRUE(w.alive(1));
  // All incident edges deleted; the unrelated edge survives.
  EXPECT_FALSE(w.edge(0, 1));
  EXPECT_FALSE(w.edge(0, 2));
  EXPECT_TRUE(w.edge(2, 3));
  EXPECT_EQ(w.active_degree(0), 0);
  EXPECT_EQ(w.active_degree(1), 0);
  EXPECT_EQ(w.active_edge_count(), 1);
  // The crashed node leaves the census and the output graph.
  EXPECT_EQ(w.census(0), 3);
  EXPECT_EQ(w.output_graph(p).order(), 3);
  // And nodes_where no longer reports it.
  const auto initial = w.nodes_where([&](StateId s) { return s == p.initial_state(); });
  EXPECT_EQ(initial, (std::vector<int>{1, 2, 3}));
}

TEST(World, KillTwiceOrMutateDeadNodeThrows) {
  World w(two_state(), 3);
  w.kill(1);
  EXPECT_THROW(w.kill(1), std::logic_error);
  EXPECT_THROW(w.set_state(1, 1), std::logic_error);
}

}  // namespace
}  // namespace netcons
