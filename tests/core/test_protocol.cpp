#include "core/protocol.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

Protocol make_star() {
  ProtocolBuilder b("star");
  const StateId c = b.add_state("c");
  const StateId p = b.add_state("p");
  b.set_initial(c);
  b.add_rule(c, c, false, c, p, true);
  b.add_rule(p, p, true, p, p, false);
  b.add_rule(c, p, false, c, p, true);
  return b.build();
}

TEST(ProtocolBuilder, BasicMetadata) {
  const Protocol star = make_star();
  EXPECT_EQ(star.name(), "star");
  EXPECT_EQ(star.state_count(), 2);
  EXPECT_EQ(star.initial_state(), 0);
  EXPECT_FALSE(star.randomized());
  EXPECT_EQ(star.effective_rule_count(), 3);
  EXPECT_EQ(star.state_name(0), "c");
  EXPECT_EQ(star.state_by_name("p"), std::optional<StateId>{1});
  EXPECT_FALSE(star.state_by_name("zz").has_value());
  // All states are output states by default.
  EXPECT_TRUE(star.is_output_state(0));
  EXPECT_TRUE(star.is_output_state(1));
}

TEST(ProtocolBuilder, RejectsDuplicatesAndUnknowns) {
  ProtocolBuilder b("bad");
  const StateId a = b.add_state("a");
  EXPECT_THROW((void)b.add_state("a"), std::logic_error);
  EXPECT_THROW(b.set_initial(static_cast<StateId>(7)), std::logic_error);
  EXPECT_THROW(b.add_rule(a, static_cast<StateId>(9), false, a, a, false), std::logic_error);
  EXPECT_THROW((void)b.build(), std::logic_error);  // initial not set
}

TEST(ProtocolBuilder, RejectsConflictingRedefinition) {
  ProtocolBuilder b("conflict");
  const StateId a = b.add_state("a");
  const StateId c = b.add_state("c");
  b.set_initial(a);
  b.add_rule(a, c, false, a, a, true);
  b.add_rule(a, c, false, a, a, true);  // identical redefinition is fine
  b.add_rule(a, c, true, c, c, false);
  EXPECT_NO_THROW((void)b.build());

  ProtocolBuilder b2("conflict2");
  const StateId x = b2.add_state("x");
  const StateId y = b2.add_state("y");
  b2.set_initial(x);
  b2.add_rule(x, y, false, x, x, true);
  b2.add_rule(x, y, false, y, y, true);  // conflicting
  EXPECT_THROW((void)b2.build(), std::logic_error);
}

TEST(ProtocolBuilder, RejectsInconsistentOrientations) {
  ProtocolBuilder b("orient");
  const StateId a = b.add_state("a");
  const StateId c = b.add_state("c");
  b.set_initial(a);
  b.add_rule(a, c, false, a, a, true);
  // (c, a) must be the swap image (a2, b2) = (a, a): it is, so allowed.
  b.add_rule(c, a, false, a, a, true);
  EXPECT_NO_THROW((void)b.build());

  ProtocolBuilder b2("orient2");
  const StateId x = b2.add_state("x");
  const StateId y = b2.add_state("y");
  b2.set_initial(x);
  b2.add_rule(x, y, false, x, x, true);
  b2.add_rule(y, x, false, y, y, true);  // not the swap image
  EXPECT_THROW((void)b2.build(), std::logic_error);
}

TEST(Protocol, ResolveHandlesOrientation) {
  const Protocol star = make_star();
  const StateId c = *star.state_by_name("c");
  const StateId p = *star.state_by_name("p");
  // Stored orientation.
  const auto direct = star.resolve(c, p, false);
  ASSERT_NE(direct.rule, nullptr);
  EXPECT_FALSE(direct.swapped);
  // Reverse orientation found via swap.
  const auto rev = star.resolve(p, c, false);
  ASSERT_NE(rev.rule, nullptr);
  EXPECT_TRUE(rev.swapped);
  // Undefined triple.
  EXPECT_EQ(star.resolve(c, p, true).rule, nullptr);
  EXPECT_TRUE(star.ineffective(c, p, true));
  EXPECT_FALSE(star.ineffective(c, c, false));
}

TEST(Protocol, EdgeModifyingFlag) {
  const Protocol star = make_star();
  const StateId c = *star.state_by_name("c");
  const StateId p = *star.state_by_name("p");
  EXPECT_TRUE(star.can_modify_edge(c, c, false));
  EXPECT_TRUE(star.can_modify_edge(p, p, true));
  EXPECT_FALSE(star.can_modify_edge(p, p, false));
}

TEST(Protocol, IneffectiveRulesAreStoredButInert) {
  ProtocolBuilder b("inert");
  const StateId a = b.add_state("a");
  b.set_initial(a);
  b.add_rule(a, a, false, a, a, false);  // explicit no-op
  const Protocol p = b.build();
  EXPECT_EQ(p.effective_rule_count(), 0);
  EXPECT_TRUE(p.ineffective(a, a, false));
}

TEST(Protocol, CoinRulesMarkRandomized) {
  ProtocolBuilder b("coin");
  const StateId a = b.add_state("a");
  const StateId c = b.add_state("c");
  b.set_initial(a);
  b.add_coin_rule(a, c, false, Outcome{a, a, false}, Outcome{c, c, true});
  const Protocol p = b.build();
  EXPECT_TRUE(p.randomized());
  const auto r = p.resolve(a, c, false);
  ASSERT_NE(r.rule, nullptr);
  EXPECT_TRUE(r.rule->coin);
  EXPECT_TRUE(r.rule->effective);
  EXPECT_TRUE(r.rule->edge_modifying);
}

TEST(Protocol, DescribeListsEffectiveRules) {
  const Protocol star = make_star();
  const std::string text = star.describe();
  EXPECT_NE(text.find("star"), std::string::npos);
  EXPECT_NE(text.find("(c, c, 0) -> (c, p, 1)"), std::string::npos);
}

TEST(Protocol, OutputStatesRestriction) {
  ProtocolBuilder b("out");
  const StateId a = b.add_state("a");
  const StateId c = b.add_state("c");
  b.set_initial(a);
  b.set_output_states({c});
  b.add_rule(a, a, false, c, c, true);
  const Protocol p = b.build();
  EXPECT_FALSE(p.is_output_state(a));
  EXPECT_TRUE(p.is_output_state(c));
}

}  // namespace
}  // namespace netcons
