#include "core/simulator.hpp"

#include "sched/schedulers.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace netcons {
namespace {

Protocol star_protocol() {
  ProtocolBuilder b("star");
  const StateId c = b.add_state("c");
  const StateId p = b.add_state("p");
  b.set_initial(c);
  b.add_rule(c, c, false, c, p, true);
  b.add_rule(p, p, true, p, p, false);
  b.add_rule(c, p, false, c, p, true);
  return b.build();
}

TEST(Simulator, ScriptedExactTransitions) {
  // Drive a precise execution of Global-Star on 3 nodes:
  // (0,1): c,c -> one becomes p, edge 0-1 active.
  // (0,2): the surviving center meets c... depends on the coin; instead use
  // the deterministic (c, p, 0) attraction by scripting (0,1) then (0,1)
  // again (now ineffective) then checking census.
  auto sched = std::make_unique<ScriptedScheduler>(
      std::vector<Encounter>{{0, 1}, {0, 1}}, /*strict=*/false);
  Simulator sim(star_protocol(), 3, 42, std::move(sched));
  EXPECT_TRUE(sim.step());  // effective: creates center-peripheral pair
  EXPECT_TRUE(sim.world().edge(0, 1));
  EXPECT_EQ(sim.world().census(0), 2);  // two c's remain (one of 0/1 + node 2)
  EXPECT_EQ(sim.world().census(1), 1);
  EXPECT_FALSE(sim.step());  // (c, p, 1) or (p, c, 1) is undefined: ineffective
  EXPECT_EQ(sim.effective_steps(), 1u);
  EXPECT_EQ(sim.steps(), 2u);
}

TEST(Simulator, SymmetricCoinAssignsBothWays) {
  // (c, c, 0) -> (c, p, 1): with identical inputs the model assigns the two
  // distinct outputs equiprobably. Run many 2-node trials and check both
  // assignments occur.
  int node0_center = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    auto sched = std::make_unique<ScriptedScheduler>(std::vector<Encounter>{{0, 1}});
    Simulator sim(star_protocol(), 2, trial_seed(7, static_cast<std::uint64_t>(t)),
                  std::move(sched));
    sim.step();
    if (sim.world().state(0) == 0) ++node0_center;
  }
  EXPECT_GT(node0_center, trials / 2 - 50);
  EXPECT_LT(node0_center, trials / 2 + 50);
}

TEST(Simulator, QuiescenceDetection) {
  // A 2-node star is stable after one interaction.
  Simulator sim(star_protocol(), 2, 5);
  EXPECT_FALSE(sim.is_quiescent());
  const auto report = sim.run_until_stable();
  EXPECT_TRUE(report.stabilized);
  EXPECT_TRUE(report.quiescent);
  EXPECT_TRUE(sim.is_quiescent());
  EXPECT_EQ(report.convergence_step, 1u);  // single effective step
}

TEST(Simulator, EdgeQuiescenceIsWeaker) {
  ProtocolBuilder b("swap-only");
  const StateId a = b.add_state("a");
  const StateId c = b.add_state("c");
  b.set_initial(a);
  b.add_rule(a, c, false, c, a, false);  // node states swap forever, no edges
  const Protocol p = b.build();
  Simulator sim(p, 3, 11);
  sim.mutable_world().set_state(0, c);
  EXPECT_TRUE(sim.is_edge_quiescent());
  EXPECT_FALSE(sim.is_quiescent());
}

TEST(Simulator, CertificateShortCircuitsStability) {
  // The swap-only protocol never quiesces; a certificate recognizes it.
  ProtocolBuilder b("swap-only");
  const StateId a = b.add_state("a");
  const StateId c = b.add_state("c");
  b.set_initial(a);
  b.add_rule(a, c, false, c, a, false);
  const Protocol p = b.build();

  Simulator sim(p, 4, 13);
  sim.mutable_world().set_state(0, c);
  Simulator::StabilityOptions options;
  options.max_steps = 100000;
  options.certificate = [](const Protocol&, const World& w) { return w.census(1) == 1; };
  const auto report = sim.run_until_stable(options);
  EXPECT_TRUE(report.stabilized);
  EXPECT_TRUE(report.certified);
  EXPECT_FALSE(report.quiescent);
}

TEST(Simulator, TimeoutReportsNotStabilized) {
  ProtocolBuilder b("ping");
  const StateId a = b.add_state("a");
  const StateId c = b.add_state("c");
  b.set_initial(a);
  b.add_rule(a, c, false, c, a, false);
  const Protocol p = b.build();
  Simulator sim(p, 3, 17);
  sim.mutable_world().set_state(0, c);
  Simulator::StabilityOptions options;
  options.max_steps = 1000;
  const auto report = sim.run_until_stable(options);
  EXPECT_FALSE(report.stabilized);
  EXPECT_EQ(report.steps_executed, 1000u);
}

TEST(Simulator, RunUntilPredicate) {
  Simulator sim(star_protocol(), 6, 23);
  const auto step = sim.run_until([](const World& w) { return w.census(0) == 1; }, 1000000);
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(sim.world().census(0), 1);
}

TEST(Simulator, OutputChangeTrackingMatchesStarConvergence) {
  // After stabilization the convergence step must be the last step at which
  // the active graph changed; replaying to that step must give the final
  // output, and any later effective steps must not alter it.
  Simulator sim(star_protocol(), 8, 29);
  Simulator::StabilityOptions options;
  options.max_steps = 10'000'000;
  const auto report = sim.run_until_stable(options);
  ASSERT_TRUE(report.stabilized);
  const Graph final_graph = sim.world().output_graph(sim.protocol());

  Simulator replay(star_protocol(), 8, 29);
  replay.run(report.convergence_step);
  EXPECT_EQ(replay.world().output_graph(replay.protocol()), final_graph);
}

TEST(Simulator, CoinRuleTakesBothBranches) {
  ProtocolBuilder b("coin");
  const StateId a = b.add_state("a");
  const StateId h = b.add_state("h");
  const StateId t = b.add_state("t");
  b.set_initial(a);
  b.add_coin_rule(a, a, false, Outcome{h, h, false}, Outcome{t, t, false});
  const Protocol p = b.build();

  int heads = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    auto sched = std::make_unique<ScriptedScheduler>(std::vector<Encounter>{{0, 1}});
    Simulator sim(p, 2, trial_seed(31, static_cast<std::uint64_t>(i)), std::move(sched));
    sim.step();
    if (sim.world().state(0) == h) ++heads;
  }
  EXPECT_GT(heads, 50);
  EXPECT_LT(heads, 150);
}

TEST(Simulator, RejectsTinyPopulation) {
  EXPECT_THROW(Simulator(star_protocol(), 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace netcons
