#include "core/trace.hpp"

#include "protocols/protocols.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

TEST(Trace, CaptureSnapshotsConfiguration) {
  auto spec = protocols::global_star();
  Simulator sim(spec.protocol, 5, 3);
  sim.run(100);
  const Snapshot snap = capture(sim);
  EXPECT_EQ(snap.step, 100u);
  EXPECT_EQ(snap.states.size(), 5u);
  EXPECT_EQ(snap.active.order(), 5);
}

TEST(Trace, CensusSummaryListsNonEmptyStates) {
  auto spec = protocols::global_star();
  Simulator sim(spec.protocol, 4, 3);
  const std::string s = census_summary(sim.protocol(), sim.world());
  EXPECT_EQ(s, "c=4");
}

TEST(Trace, ComponentCensusClassifiesShapes) {
  Graph g(12);
  // line 0-1-2, cycle 3-4-5, star 6:{7,8,9}, isolated 10, 11
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  g.add_edge(6, 7);
  g.add_edge(6, 8);
  g.add_edge(6, 9);
  const ComponentCensus census = component_census(g);
  EXPECT_EQ(census.isolated, 2);
  // A 3-node line is also classified first as a line (star of 3 == line of 3:
  // the line check runs first).
  EXPECT_EQ(census.lines, 1);
  EXPECT_EQ(census.cycles, 1);
  EXPECT_EQ(census.stars, 1);
  EXPECT_EQ(census.other, 0);
  EXPECT_EQ(census.largest, 4);
}

}  // namespace
}  // namespace netcons
