// Weighted census sampling: every non-uniform scheduler that exports a
// SchedulerWeightModel runs on the census engine natively (no naive
// fallback), bit-deterministically, and under the scheduler's single-step
// marginal law -- KS-gated against the naive reference here at modest
// sizes and again in CI at the heavier settled configurations.
#include "core/census_engine.hpp"

#include "analysis/distribution.hpp"
#include "campaign/registry.hpp"
#include "core/simulator.hpp"
#include "sched/proximity.hpp"
#include "sched/schedulers.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace netcons {
namespace {

std::unique_ptr<Scheduler> make_named(const std::string& spec) {
  const auto option = campaign::make_scheduler(spec);
  EXPECT_TRUE(option.has_value()) << spec;
  EXPECT_NE(option->make, nullptr) << spec;  // these tests use non-uniform specs only
  return option->make();
}

TEST(WeightedCensus, NonUniformSchedulersAvoidTheNaiveFallback) {
  const ProtocolSpec spec = *campaign::make_protocol("cycle-cover");
  for (const char* name :
       {"proximity:alpha=2:r=0.3", "permutation", "stale-biased:bias=0.05"}) {
    CensusEngine engine(spec.protocol, 24, 7, make_named(name));
    EXPECT_FALSE(engine.fallback_active()) << name;
    EXPECT_NE(engine.weight_model(), nullptr) << name;
    const ConvergenceReport report = engine.run_until_stable();
    EXPECT_TRUE(report.stabilized) << name;
    // The run actually exercised the weighted path.
    EXPECT_GT(engine.stats().weighted_samples, 0u) << name;
  }
}

TEST(WeightedCensus, RerunsAreBitIdentical) {
  const ProtocolSpec spec = *campaign::make_protocol("cycle-cover");
  for (const char* name : {"proximity:alpha=2:r=0.3:layout=clustered", "permutation",
                           "stale-biased:bias=0.05"}) {
    CensusEngine first(spec.protocol, 32, 99, make_named(name));
    CensusEngine second(spec.protocol, 32, 99, make_named(name));
    const ConvergenceReport a = first.run_until_stable();
    const ConvergenceReport b = second.run_until_stable();
    EXPECT_EQ(a.stabilized, b.stabilized) << name;
    EXPECT_EQ(a.convergence_step, b.convergence_step) << name;
    EXPECT_EQ(first.steps(), second.steps()) << name;
    EXPECT_EQ(first.effective_steps(), second.effective_steps()) << name;
  }
}

// Two-sample KS over convergence steps, 300 trials per engine, threshold
// 0.12 -- the alpha ~ 0.027 critical value for 300 vs 300, matching the
// uniform-scheduler equivalence test in test_engine.cpp. Deterministic in
// the seeds, so none of these flake.
void expect_marginal_matches_naive(const std::string& protocol_name,
                                   const std::string& scheduler_spec, int n,
                                   std::uint64_t base_seed, double threshold) {
  const ProtocolSpec spec = *campaign::make_protocol(protocol_name);
  const int trials = 300;
  analysis::ValueDistribution naive_dist;
  analysis::ValueDistribution census_dist;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = trial_seed(base_seed, static_cast<std::uint64_t>(t));
    Simulator naive(spec.protocol, n, seed, make_named(scheduler_spec));
    const ConvergenceReport naive_report = naive.run_until_stable();
    ASSERT_TRUE(naive_report.stabilized);
    naive_dist.add(naive_report.convergence_step);

    CensusEngine census(spec.protocol, n, seed, make_named(scheduler_spec));
    const ConvergenceReport census_report = census.run_until_stable();
    ASSERT_TRUE(census_report.stabilized);
    census_dist.add(census_report.convergence_step);
  }
  EXPECT_LT(analysis::ks_distance(naive_dist, census_dist), threshold)
      << scheduler_spec << " on " << protocol_name << " n=" << n;
}

TEST(WeightedCensus, ProximityConvergenceMatchesNaive) {
  expect_marginal_matches_naive("cycle-cover", "proximity:alpha=2:r=0.3", 32, 9090, 0.12);
}

TEST(WeightedCensus, StaleBiasedMarginalMatchesNaive) {
  expect_marginal_matches_naive("cycle-cover", "stale-biased:bias=0.05", 64, 9090, 0.12);
}

TEST(WeightedCensus, PermutationMarginalMatchesNaive) {
  // Permutation rounds carry the strongest temporal correlation of the
  // uniform-marginal schedulers; the marginal-law contract
  // (core/scheduler.hpp) promises only the single-step marginal, so the
  // in-tree bound is looser at this size. The n=96 CI gate pins 0.12.
  expect_marginal_matches_naive("spanning-net", "permutation", 48, 9090, 0.2);
}

}  // namespace
}  // namespace netcons
