// Property and fuzz tests of the core engine against brute-force oracles:
//  * incremental output-change tracking == recomputing the output graph,
//  * World census/degree bookkeeping == recounting from scratch,
//  * quiescence claim == no effective step ever again,
//  * trajectory determinism from the seed,
//  * resolve() orientation coherence on randomly generated rule tables.
#include "core/simulator.hpp"

#include "protocols/protocols.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

class OutputTrackingOracle : public ::testing::TestWithParam<int> {};

TEST_P(OutputTrackingOracle, IncrementalTrackingMatchesBruteForce) {
  ProtocolSpec spec;
  int n = 10;
  switch (GetParam()) {
    case 0: spec = protocols::global_star(); break;
    case 1: spec = protocols::cycle_cover(); break;
    case 2: spec = protocols::fast_global_line(); break;
    default:
      spec = protocols::replication(Graph::ring(3));  // restricted Qout
      n = 7;
      break;
  }
  Simulator sim(spec.protocol, n, 1234);
  if (spec.initialize) spec.initialize(sim.mutable_world());

  Graph previous = sim.world().output_graph(spec.protocol);
  std::uint64_t oracle_last_change = 0;
  for (int i = 0; i < 4000; ++i) {
    sim.step();
    Graph current = sim.world().output_graph(spec.protocol);
    if (!(current == previous)) oracle_last_change = sim.steps();
    previous = std::move(current);
    if (i % 100 == 0) {
      ASSERT_EQ(sim.last_output_change(), oracle_last_change)
          << spec.protocol.name() << " at step " << sim.steps();
    }
  }
  EXPECT_EQ(sim.last_output_change(), oracle_last_change) << spec.protocol.name();
}

INSTANTIATE_TEST_SUITE_P(Protocols, OutputTrackingOracle, ::testing::Range(0, 4));

TEST(WorldOracle, BookkeepingMatchesRecount) {
  const auto spec = protocols::krc(3);
  World world(spec.protocol, 12);
  Rng rng(777);
  const int q = spec.protocol.state_count();
  for (int i = 0; i < 5000; ++i) {
    if (rng.coin()) {
      const int u = static_cast<int>(rng.below(12));
      world.set_state(u, static_cast<StateId>(rng.below(static_cast<std::uint64_t>(q))));
    } else {
      const int u = static_cast<int>(rng.below(12));
      int v = static_cast<int>(rng.below(11));
      if (v >= u) ++v;
      world.set_edge(u, v, rng.coin());
    }
    if (i % 500 != 0) continue;
    // Recount everything from scratch.
    std::vector<int> census(static_cast<std::size_t>(q), 0);
    for (int u = 0; u < 12; ++u) ++census[world.state(u)];
    for (int s = 0; s < q; ++s) {
      ASSERT_EQ(world.census(static_cast<StateId>(s)), census[static_cast<std::size_t>(s)]);
    }
    std::int64_t edges = 0;
    for (int u = 0; u < 12; ++u) {
      int degree = 0;
      for (int v = 0; v < 12; ++v) {
        if (v != u && world.edge(u, v)) ++degree;
      }
      ASSERT_EQ(world.active_degree(u), degree);
      edges += degree;
    }
    ASSERT_EQ(world.active_edge_count(), edges / 2);
  }
}

TEST(QuiescenceOracle, QuiescentMeansNoEffectiveStepEver) {
  const auto spec = protocols::cycle_cover();
  Simulator sim(spec.protocol, 9, 31);
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(9);
  const auto report = sim.run_until_stable(options);
  ASSERT_TRUE(report.quiescent);
  const auto effective_before = sim.effective_steps();
  sim.run(50'000);
  EXPECT_EQ(sim.effective_steps(), effective_before);
}

TEST(Determinism, IdenticalTrajectoriesFromIdenticalSeeds) {
  const auto spec = protocols::two_rc();
  Simulator a(spec.protocol, 8, 999);
  Simulator b(spec.protocol, 8, 999);
  for (int i = 0; i < 20000; ++i) {
    a.step();
    b.step();
  }
  for (int u = 0; u < 8; ++u) {
    ASSERT_EQ(a.world().state(u), b.world().state(u));
  }
  EXPECT_EQ(a.world().active_graph(), b.world().active_graph());
  EXPECT_EQ(a.effective_steps(), b.effective_steps());
  EXPECT_EQ(a.last_output_change(), b.last_output_change());
}

TEST(ResolveCoherence, RandomTablesResolveConsistently) {
  // Build random protocols (canonical orientation a <= b) and check that
  // resolving either orientation finds the same rule with the correct
  // swapped flag, and that undefined triples stay undefined both ways.
  Rng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    ProtocolBuilder b("fuzz" + std::to_string(trial));
    const int q = 3 + static_cast<int>(rng.below(5));
    std::vector<StateId> states;
    for (int s = 0; s < q; ++s) states.push_back(b.add_state("s" + std::to_string(s)));
    b.set_initial(states[0]);
    for (int i = 0; i < q * q; ++i) {
      const auto a1 = states[rng.below(static_cast<std::uint64_t>(q))];
      const auto a2 = states[rng.below(static_cast<std::uint64_t>(q))];
      const StateId lo = std::min(a1, a2);
      const StateId hi = std::max(a1, a2);
      const bool c = rng.coin();
      const auto r1 = states[rng.below(static_cast<std::uint64_t>(q))];
      const auto r2 = states[rng.below(static_cast<std::uint64_t>(q))];
      try {
        b.add_rule(lo, hi, c, r1, r2, rng.coin());
      } catch (const std::logic_error&) {
        // conflicting duplicate: acceptable in a fuzz loop
      }
    }
    Protocol p;
    try {
      p = b.build();
    } catch (const std::logic_error&) {
      continue;  // conflicting redefinitions; skip this table
    }
    for (StateId x = 0; x < q; ++x) {
      for (StateId y = 0; y < q; ++y) {
        for (bool c : {false, true}) {
          const auto forward = p.resolve(x, y, c);
          const auto backward = p.resolve(y, x, c);
          ASSERT_EQ(forward.rule == nullptr, backward.rule == nullptr);
          if (forward.rule != nullptr && x != y) {
            ASSERT_EQ(forward.rule, backward.rule);
            ASSERT_NE(forward.swapped, backward.swapped);
          }
        }
      }
    }
  }
}

TEST(EffectiveSteps, CountsOnlyChanges) {
  const auto spec = protocols::global_star();
  Simulator sim(spec.protocol, 6, 5);
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(6);
  const auto report = sim.run_until_stable(options);
  ASSERT_TRUE(report.stabilized);
  EXPECT_LT(sim.effective_steps(), sim.steps());
  EXPECT_GE(sim.effective_steps(), 5u);  // at least n-1 edges were built
}

}  // namespace
}  // namespace netcons
