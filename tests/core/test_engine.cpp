// The pluggable execution-engine API: CensusEngine equivalence with the
// naive reference, its exactness fallbacks, the protocol-derived
// effectiveness table, and the Protocol::resolve swap-symmetry edge cases
// the census sampler depends on.
#include "core/census_engine.hpp"

#include "analysis/distribution.hpp"
#include "campaign/registry.hpp"
#include "graph/graph.hpp"
#include "sched/schedulers.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

namespace netcons {
namespace {

Protocol star_protocol() {
  ProtocolBuilder b("star");
  const StateId c = b.add_state("c");
  const StateId p = b.add_state("p");
  b.set_initial(c);
  b.add_rule(c, c, false, c, p, true);
  b.add_rule(p, p, true, p, p, false);
  b.add_rule(c, p, false, c, p, true);
  return b.build();
}

// --- effectiveness table ---------------------------------------------------

TEST(EffectiveStateClasses, MatchesIneffectiveOnEveryTripleOfAllProtocols) {
  // The census sampler's support must be exactly the complement of
  // Protocol::ineffective over unordered (a, b, c) triples -- for every
  // registered protocol, including the parameterized families.
  for (const std::string& name : campaign::protocol_names()) {
    const ProtocolSpec spec = *campaign::make_protocol(name);
    const Protocol& protocol = spec.protocol;
    std::set<std::tuple<StateId, StateId, bool>> classes;
    for (const EffectiveClass& cls : effective_state_classes(protocol)) {
      EXPECT_LE(cls.a, cls.b) << name << ": classes must be orientation-normalized";
      const bool inserted = classes.insert({cls.a, cls.b, cls.c}).second;
      EXPECT_TRUE(inserted) << name << ": duplicate class";
    }
    const int q = protocol.state_count();
    for (int a = 0; a < q; ++a) {
      for (int b = 0; b < q; ++b) {
        for (const bool c : {false, true}) {
          const auto sa = static_cast<StateId>(a);
          const auto sb = static_cast<StateId>(b);
          const bool in_table = classes.count({std::min(sa, sb), std::max(sa, sb), c}) != 0;
          EXPECT_EQ(in_table, !protocol.ineffective(sa, sb, c))
              << name << " (" << protocol.state_name(sa) << ", " << protocol.state_name(sb)
              << ", " << c << ")";
        }
      }
    }
  }
}

// --- resolve swap-symmetry edge cases --------------------------------------

TEST(ProtocolResolve, BothOrientationsDefinedAndAgreeing) {
  // When both orientations of (a, b, c) are defined (allowed only if they
  // agree under the swap symmetry), each direction resolves to its own
  // directly-stored entry -- neither is reported as swapped -- and the two
  // entries are swap images of each other.
  ProtocolBuilder b("both");
  const StateId x = b.add_state("x");
  const StateId y = b.add_state("y");
  b.set_initial(x);
  b.add_rule(x, y, false, x, x, true);
  b.add_rule(y, x, false, x, x, true);  // the swap image (outcome symmetric)
  const Protocol p = b.build();

  const auto direct = p.resolve(x, y, false);
  ASSERT_NE(direct.rule, nullptr);
  EXPECT_FALSE(direct.swapped);
  EXPECT_EQ(direct.rule->primary, (Outcome{x, x, true}));

  const auto reverse = p.resolve(y, x, false);
  ASSERT_NE(reverse.rule, nullptr);
  EXPECT_FALSE(reverse.swapped);  // stored directly, no swap needed
  EXPECT_EQ(reverse.rule->primary, (Outcome{x, x, true}));

  EXPECT_FALSE(p.ineffective(x, y, false));
  EXPECT_FALSE(p.ineffective(y, x, false));
}

TEST(ProtocolResolve, CoinRulesResolveSwapped) {
  // A PREL coin rule stored at (a, b, c) must be found from the (b, a, c)
  // orientation with swapped = true and both branches intact.
  ProtocolBuilder b("coin");
  const StateId a = b.add_state("a");
  const StateId z = b.add_state("z");
  b.set_initial(a);
  b.add_coin_rule(a, z, false, Outcome{a, a, true}, Outcome{z, z, false});
  b.add_rule(a, a, false, a, z, true);  // make the protocol minimally live
  const Protocol p = b.build();

  const auto direct = p.resolve(a, z, false);
  ASSERT_NE(direct.rule, nullptr);
  EXPECT_FALSE(direct.swapped);
  EXPECT_TRUE(direct.rule->coin);

  const auto swapped = p.resolve(z, a, false);
  ASSERT_NE(swapped.rule, nullptr);
  EXPECT_TRUE(swapped.swapped);
  EXPECT_TRUE(swapped.rule->coin);
  EXPECT_EQ(swapped.rule, direct.rule);  // same table entry, role-swapped
  EXPECT_EQ(swapped.rule->primary, (Outcome{a, a, true}));
  EXPECT_EQ(swapped.rule->secondary, (Outcome{z, z, false}));

  // The effectiveness table sees exactly one normalized class for the pair.
  int matches = 0;
  for (const EffectiveClass& cls : effective_state_classes(p)) {
    if (cls.a == std::min(a, z) && cls.b == std::max(a, z) && !cls.c) ++matches;
  }
  EXPECT_EQ(matches, 1);
}

// --- census engine: equivalence with the naive reference -------------------

TEST(CensusEngine, StabilizesRegisteredProtocolsToTheTarget) {
  for (const std::string name : {"global-star", "cycle-cover", "simple-global-line"}) {
    const ProtocolSpec spec = *campaign::make_protocol(name);
    CensusEngine engine(spec.protocol, 16, 99);
    const ConvergenceReport report = engine.run_until_stable();
    EXPECT_TRUE(report.stabilized) << name;
    EXPECT_TRUE(report.quiescent) << name;
    EXPECT_TRUE(spec.target(engine.world().output_graph(spec.protocol))) << name;
    EXPECT_EQ(engine.effective_pair_weight(), 0u) << name;
    EXPECT_TRUE(engine.is_quiescent()) << name;  // O(n^2) scan agrees with W == 0
  }
}

TEST(CensusEngine, ConvergenceStepDistributionMatchesNaive) {
  // Two-sample KS over convergence steps, 300 trials per engine on
  // Global-Star at n = 16. The engines consume their seeds differently, so
  // the samples are independent draws from (if the census argument holds)
  // the same distribution. Threshold 0.12 is the alpha ~ 0.027 critical
  // value for 300 vs 300 (c = 0.12 / sqrt(2/300) = 1.47); the draw is
  // deterministic in the seeds, so this does not flake.
  const ProtocolSpec spec = *campaign::make_protocol("global-star");
  const int trials = 300;
  analysis::ValueDistribution naive_dist;
  analysis::ValueDistribution census_dist;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = trial_seed(2024, static_cast<std::uint64_t>(t));
    Simulator naive(spec.protocol, 16, seed);
    const ConvergenceReport naive_report = naive.run_until_stable();
    ASSERT_TRUE(naive_report.stabilized);
    naive_dist.add(naive_report.convergence_step);

    CensusEngine census(spec.protocol, 16, seed);
    const ConvergenceReport census_report = census.run_until_stable();
    ASSERT_TRUE(census_report.stabilized);
    census_dist.add(census_report.convergence_step);
  }
  EXPECT_LT(analysis::ks_distance(naive_dist, census_dist), 0.12);
}

TEST(CensusEngine, StepAccountingSkipsIneffectiveInteractions) {
  CensusEngine engine(star_protocol(), 8, 7);
  ASSERT_TRUE(engine.step());  // the initial all-c configuration is all-effective
  EXPECT_EQ(engine.effective_steps(), 1u);
  EXPECT_GE(engine.steps(), 1u);
  const ConvergenceReport report = engine.run_until_stable();
  EXPECT_TRUE(report.stabilized);
  // Every executed interaction was effective; the clock counts the skips.
  EXPECT_LE(engine.effective_steps(), engine.steps());
  // Quiescent now: a step is a wasted interaction, exactly one tick.
  const std::uint64_t before = engine.steps();
  const std::uint64_t effective_before = engine.effective_steps();
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(engine.steps(), before + 1);
  EXPECT_EQ(engine.effective_steps(), effective_before);
}

TEST(CensusEngine, RunAdvancesExactlyTheRequestedSteps) {
  CensusEngine engine(star_protocol(), 12, 21);
  engine.run(10'000);
  EXPECT_EQ(engine.steps(), 10'000u);
  Simulator naive(star_protocol(), 12, 21);
  naive.run(10'000);
  EXPECT_EQ(naive.steps(), 10'000u);
  // Both reach the stable star within that budget (n = 12 stabilizes in
  // far fewer steps with overwhelming probability at these seeds).
  EXPECT_TRUE(engine.is_quiescent());
  EXPECT_TRUE(naive.is_quiescent());
}

TEST(CensusEngine, RunUntilMatchesPredicateSemantics) {
  // The predicate can only change on effective steps, and the returned
  // index is the paper's step clock at the first step where it held.
  const Protocol star = star_protocol();
  CensusEngine engine(star, 10, 5);
  const auto done = [](const World& w) { return w.census(1) >= 5; };  // 5 peripherals
  const auto at = engine.run_until(done, 1'000'000);
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(*at, engine.steps());
  EXPECT_GE(engine.world().census(1), 5);
  // Timeout path: an impossible predicate runs the clock to the budget.
  CensusEngine stuck(star, 10, 5);
  const auto never = stuck.run_until([](const World&) { return false; }, 5'000);
  EXPECT_FALSE(never.has_value());
  EXPECT_EQ(stuck.steps(), 5'000u);
}

// --- fallbacks -------------------------------------------------------------

namespace {

/// A scheduler with no weight model: plays pairs in a fixed rotation, so
/// its law is history-dependent and inexpressible as static weights.
class RotatingScheduler final : public Scheduler {
 public:
  [[nodiscard]] Encounter next(Rng&, int n) override {
    const std::uint64_t pairs = Graph::pair_count(n);
    const std::uint64_t i = cursor_++ % pairs;
    int v = 1;
    while (Graph::pair_count(v + 1) <= i) ++v;
    return {static_cast<int>(i - Graph::pair_count(v)), v};
  }
  void reset() override { cursor_ = 0; }

 private:
  std::uint64_t cursor_ = 0;
};

}  // namespace

TEST(CensusEngine, ModellessSchedulerFallsBackToExactNaiveSemantics) {
  // A custom scheduler that exports no weight model forces the reference
  // per-step path -- bit-identical to a Simulator built with the same seed
  // and scheduler, not merely equal in distribution.
  const Protocol star = star_protocol();
  CensusEngine census(star, 12, 77, std::make_unique<RotatingScheduler>());
  EXPECT_TRUE(census.fallback_active());
  Simulator naive(star, 12, 77, std::make_unique<RotatingScheduler>());
  census.run(500);
  naive.run(500);
  EXPECT_EQ(census.steps(), naive.steps());
  EXPECT_EQ(census.effective_steps(), naive.effective_steps());
  EXPECT_EQ(census.last_output_change(), naive.last_output_change());
  for (int u = 0; u < 12; ++u) {
    EXPECT_EQ(census.world().state(u), naive.world().state(u)) << "node " << u;
  }
}

class CountingInterceptor final : public StepInterceptor {
 public:
  void before_step(Engine&) override { ++calls; }
  int calls = 0;
};

TEST(CensusEngine, InterceptorForcesPerStepExecutionUntilCleared) {
  CensusEngine engine(star_protocol(), 10, 13);
  CountingInterceptor interceptor;
  engine.set_interceptor(&interceptor);
  EXPECT_TRUE(engine.fallback_active());
  engine.run(100);
  EXPECT_EQ(interceptor.calls, 100);  // hooks observe every step, none skipped
  EXPECT_EQ(engine.steps(), 100u);
  engine.set_interceptor(nullptr);
  EXPECT_FALSE(engine.fallback_active());
  // Census sampling resumes (and still stabilizes correctly).
  const ConvergenceReport report = engine.run_until_stable();
  EXPECT_TRUE(report.stabilized);
}

TEST(CensusEngine, ExternalWorldMutationInvalidatesTheTables) {
  // Stabilize a star, then delete a center-peripheral edge behind the
  // engine's back: (c, p, 0) -> (c, p, 1) becomes effective again and the
  // engine must notice (rebuild) and repair it.
  CensusEngine engine(star_protocol(), 10, 31);
  ASSERT_TRUE(engine.run_until_stable().stabilized);
  ASSERT_EQ(engine.effective_pair_weight(), 0u);
  const std::vector<int> centers = engine.world().nodes_where([](StateId s) { return s == 0; });
  ASSERT_EQ(centers.size(), 1u);
  int peripheral = centers[0] == 0 ? 1 : 0;
  engine.mutable_world().set_edge(centers[0], peripheral, false);
  EXPECT_EQ(engine.effective_pair_weight(), 1u);  // exactly the broken spoke
  const ConvergenceReport repaired = engine.run_until_stable();
  EXPECT_TRUE(repaired.stabilized);
  EXPECT_TRUE(engine.world().edge(centers[0], peripheral));
}

TEST(CensusEngine, CertificateProtocolsStabilizeUnderCensusSampling) {
  // 2RC's stable configurations are not quiescent (the leaders keep
  // swapping), so stability comes from the certificate while effective
  // steps keep flowing -- the census fast path must still terminate.
  const ProtocolSpec spec = *campaign::make_protocol("2rc");
  CensusEngine engine(spec.protocol, 12, 17);
  Engine::StabilityOptions options;
  if (spec.max_steps) options.max_steps = spec.max_steps(12);
  options.certificate = spec.certificate;
  const ConvergenceReport report = engine.run_until_stable(options);
  EXPECT_TRUE(report.stabilized);
  EXPECT_TRUE(report.certified);
  EXPECT_TRUE(spec.target(engine.world().output_graph(spec.protocol)));
}

}  // namespace
}  // namespace netcons
