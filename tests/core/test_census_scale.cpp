// Web-scale census machinery: the alias/mixture class sampler against an
// independent linear scan, delta-updated SoA tables against from-scratch
// rebuilds, the mutation journal (O(1) external deltas, overflow
// fallback), the census-leap batching mode, and the sparse World edge
// storage that serves populations past the dense-bitset budget.
#include "core/census_engine.hpp"

#include "analysis/distribution.hpp"
#include "campaign/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

namespace netcons {
namespace {

/// Per-class multiplicities by brute force over every alive pair of the
/// world -- deliberately independent of the engine's tables.
std::vector<std::uint64_t> linear_scan_weights(const Protocol& protocol, const World& w) {
  const std::vector<EffectiveClass> classes = effective_state_classes(protocol);
  std::vector<std::uint64_t> mult(classes.size(), 0);
  for (int v = 1; v < w.size(); ++v) {
    for (int u = 0; u < v; ++u) {
      if (!w.alive(u) || !w.alive(v)) continue;
      const StateId a = std::min(w.state(u), w.state(v));
      const StateId b = std::max(w.state(u), w.state(v));
      const bool c = w.edge(u, v);
      for (std::size_t i = 0; i < classes.size(); ++i) {
        if (classes[i].a == a && classes[i].b == b && classes[i].c == c) {
          ++mult[i];
          break;
        }
      }
    }
  }
  return mult;
}

/// Chi-squared statistic of `draws` class draws against the engine's
/// current configuration, with expectations from the independent linear
/// scan. Returns the number of support classes through `df_out`.
double chi_squared_class_draws(CensusEngine& engine, int draws, int* df_out) {
  const std::vector<std::uint64_t> expected = linear_scan_weights(engine.protocol(), engine.world());
  // The engine's delta-maintained weights must agree with the scan exactly
  // before the draws mean anything.
  EXPECT_EQ(engine.debug_class_weights(), expected);
  std::uint64_t total = 0;
  for (const std::uint64_t w : expected) total += w;
  EXPECT_GT(total, 0u);

  std::vector<std::uint64_t> observed(expected.size(), 0);
  for (int i = 0; i < draws; ++i) {
    const std::size_t ci = engine.debug_draw_class();
    EXPECT_LT(ci, observed.size()) << "draw on a quiescent configuration";
    if (ci >= observed.size()) break;
    ++observed[ci];
  }

  double chi2 = 0.0;
  int support = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (expected[i] == 0) {
      EXPECT_EQ(observed[i], 0u) << "drew a zero-weight class";
      continue;
    }
    ++support;
    const double e = static_cast<double>(draws) * static_cast<double>(expected[i]) /
                     static_cast<double>(total);
    const double d = static_cast<double>(observed[i]) - e;
    chi2 += d * d / e;
  }
  *df_out = support - 1;
  return chi2;
}

// --- alias table vs linear scan --------------------------------------------

TEST(CensusAlias, DrawsMatchLinearScanDistribution) {
  // 10^5 class draws per protocol against the exact multiplicities of a
  // mid-flight configuration. The first batch runs with a dirty log from
  // stepping (mixture + rejection paths); the single step between batches
  // re-dirties the table so the incremental path is exercised again after
  // an alias rebuild. Deterministic in the seed -- does not flake.
  for (const std::string name : {"simple-global-line", "cycle-cover", "global-star"}) {
    const ProtocolSpec spec = *campaign::make_protocol(name);
    CensusEngine engine(spec.protocol, 48, 20240807);
    // Advance to a mid-flight configuration where the class distribution is
    // non-degenerate (>= 2 populated classes). Fast protocols like
    // Cycle-Cover pass through it in O(n) effective steps, so probe in
    // small increments instead of a fixed offset.
    int support = 0;
    for (int probe = 0; probe < 200 && support < 2; ++probe) {
      engine.run(20);
      support = 0;
      for (const std::uint64_t w : linear_scan_weights(spec.protocol, engine.world())) {
        support += (w > 0);
      }
    }
    ASSERT_GE(support, 2) << name << ": never saw a multi-class configuration";

    for (const int batch : {0, 1}) {
      if (batch == 1) engine.run(1);  // re-dirty the alias bookkeeping
      int df = 0;
      const double chi2 = chi_squared_class_draws(engine, 50000, &df);
      ASSERT_GE(df, 1) << name;
      // ~p < 1e-4 bound for the observed df; generous because the draw is
      // deterministic anyway.
      EXPECT_LT(chi2, static_cast<double>(df) + 6.0 * std::sqrt(2.0 * df) + 16.0)
          << name << " batch " << batch << " df=" << df;
    }
  }
}

// --- delta updates vs from-scratch rebuild ---------------------------------

TEST(CensusDeltas, InterleavedStepsAndMutationsMatchFromScratchRebuild) {
  // Random interleaving of census-sampled steps, external edge flips,
  // external state writes, and crash faults; the delta-updated tables must
  // render byte-identically to a from-scratch rebuild of the same world.
  const ProtocolSpec spec = *campaign::make_protocol("global-star");
  const int n = 40;
  CensusEngine engine(spec.protocol, n, 77);
  std::mt19937 mix(123);
  std::vector<int> alive(n);
  for (int u = 0; u < n; ++u) alive[u] = u;

  for (int round = 0; round < 40; ++round) {
    engine.run(25);
    World& w = engine.mutable_world();
    for (int m = 0; m < 3; ++m) {
      const int u = alive[mix() % alive.size()];
      int v = alive[mix() % alive.size()];
      while (v == u) v = alive[mix() % alive.size()];
      switch (mix() % 3) {
        case 0:
          w.set_edge(u, v, !w.edge(u, v));
          break;
        case 1:
          w.set_state(u, static_cast<StateId>(mix() % spec.protocol.state_count()));
          break;
        default:
          if (alive.size() > 5 && round % 13 == 0) {
            w.kill(u);
            alive.erase(std::find(alive.begin(), alive.end(), u));
          } else {
            w.set_edge(u, v, !w.edge(u, v));
          }
          break;
      }
    }
  }

  EXPECT_GT(engine.stats().delta_updates, 0u);
  EXPECT_EQ(engine.debug_class_weights(), linear_scan_weights(spec.protocol, engine.world()));
  const std::string delta_view = engine.debug_table_snapshot();
  engine.debug_force_full_rebuild();
  EXPECT_EQ(delta_view, engine.debug_table_snapshot());
}

TEST(CensusDeltas, ExternalMutationIsSingleDeltaNotRebuild) {
  // The PR-5 behavior -- mutable_world() marks everything dirty and the
  // next step pays a full rebuild -- is gone: one external mutation is one
  // journal entry replayed as one O(1) delta.
  const ProtocolSpec spec = *campaign::make_protocol("global-star");
  const int n = 32;
  CensusEngine engine(spec.protocol, n, 31);
  const ConvergenceReport report = engine.run_until_stable();
  ASSERT_TRUE(report.stabilized);
  ASSERT_EQ(engine.effective_pair_weight(), 0u);

  int center = 0;
  for (int u = 0; u < n; ++u) {
    if (engine.world().active_degree(u) == n - 1) center = u;
  }
  const int peripheral = center == 0 ? 1 : 0;

  const std::uint64_t rebuilds_before = engine.stats().full_rebuilds;
  const std::uint64_t deltas_before = engine.stats().delta_updates;
  engine.mutable_world().set_edge(center, peripheral, false);
  // Severing one spoke leaves exactly one effective pair: re-linking it.
  EXPECT_EQ(engine.effective_pair_weight(), 1u);
  EXPECT_EQ(engine.stats().full_rebuilds, rebuilds_before);
  EXPECT_EQ(engine.stats().delta_updates, deltas_before + 1);

  // And the engine repairs the damage from the delta-updated tables.
  const ConvergenceReport again = engine.run_until_stable();
  EXPECT_TRUE(again.stabilized);
  EXPECT_TRUE(spec.target(engine.world().output_graph(spec.protocol)));
}

TEST(CensusDeltas, JournalOverflowFallsBackToOneFullRebuild) {
  const ProtocolSpec spec = *campaign::make_protocol("global-star");
  const int n = 16;
  CensusEngine engine(spec.protocol, n, 9);
  ASSERT_TRUE(engine.run_until_stable().stabilized);
  (void)engine.effective_pair_weight();  // drain the journal

  const std::uint64_t rebuilds_before = engine.stats().full_rebuilds;
  World& w = engine.mutable_world();
  int a = 1;
  int b = 2;
  if (w.active_degree(1) == n - 1) a = 3;  // two peripherals, never the center
  if (w.active_degree(2) == n - 1) b = 4;
  // One entry per flip; the journal capacity at n = 16 is 1024 entries.
  for (int i = 0; i < 1200; ++i) w.set_edge(a, b, !w.edge(a, b));

  EXPECT_TRUE(w.mutation_log()->overflowed);
  const std::uint64_t weight = engine.effective_pair_weight();
  EXPECT_EQ(engine.stats().full_rebuilds, rebuilds_before + 1);
  EXPECT_EQ(engine.debug_class_weights(), linear_scan_weights(spec.protocol, engine.world()));
  EXPECT_EQ(weight, engine.effective_pair_weight());
}

// --- census-leap -----------------------------------------------------------

TEST(CensusLeap, IsExactlyCensusWhileBatchesCannotOpen) {
  // Below W >= 4n / staleness the batch size K stays under 2 and leap mode
  // serves every draw exactly -- bit-identical trajectories, not merely
  // distributionally matched.
  const ProtocolSpec spec = *campaign::make_protocol("global-star");
  CensusEngine census(spec.protocol, 24, 5);
  CensusLeapOptions leap_on;
  leap_on.enabled = true;
  CensusEngine leap(spec.protocol, 24, 5, nullptr, leap_on);
  EXPECT_STREQ(leap.engine_name(), "census-leap");

  const ConvergenceReport census_report = census.run_until_stable();
  const ConvergenceReport leap_report = leap.run_until_stable();
  ASSERT_TRUE(census_report.stabilized);
  ASSERT_TRUE(leap_report.stabilized);
  EXPECT_EQ(census_report.steps_executed, leap_report.steps_executed);
  EXPECT_EQ(census_report.convergence_step, leap_report.convergence_step);
  EXPECT_EQ(leap.stats().leap_batches, 0u);
  EXPECT_GT(leap.stats().leap_exact_steps, 0u);
}

TEST(CensusLeap, ConvergenceStepDistributionMatchesCensusWhenEngaged) {
  // Two-sample KS over convergence steps, 300 trials per engine on
  // Cycle-Cover at n = 300 -- large enough that batches open (the initial
  // W = n(n-1)/2 gives K ~ staleness * n / 4 ~ 3) and the staleness bound
  // is actually load-bearing. Same 0.12 bar as the naive-vs-census gate;
  // deterministic in the seeds, so this does not flake.
  const ProtocolSpec spec = *campaign::make_protocol("cycle-cover");
  const int n = 300;
  const int trials = 300;
  CensusLeapOptions leap_on;
  leap_on.enabled = true;

  std::uint64_t batches = 0;
  analysis::ValueDistribution census_dist;
  analysis::ValueDistribution leap_dist;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = trial_seed(4247, static_cast<std::uint64_t>(t));
    CensusEngine census(spec.protocol, n, seed);
    const ConvergenceReport census_report = census.run_until_stable();
    ASSERT_TRUE(census_report.stabilized);
    census_dist.add(census_report.convergence_step);

    CensusEngine leap(spec.protocol, n, seed, nullptr, leap_on);
    const ConvergenceReport leap_report = leap.run_until_stable();
    ASSERT_TRUE(leap_report.stabilized);
    leap_dist.add(leap_report.convergence_step);
    batches += leap.stats().leap_batches;
    if (t == 0) {
      EXPECT_GT(leap.stats().leap_batched_steps, 0u);
    }
  }
  EXPECT_GT(batches, 0u);
  EXPECT_LT(analysis::ks_distance(census_dist, leap_dist), 0.12);
}

// --- sparse edge storage ---------------------------------------------------

TEST(SparseWorld, MirrorsDenseUnderRandomMutations) {
  const ProtocolSpec spec = *campaign::make_protocol("cycle-cover");
  const int n = 48;
  World dense(spec.protocol, n, World::EdgeStorage::kDense);
  World sparse(spec.protocol, n, World::EdgeStorage::kSparse);
  ASSERT_FALSE(dense.sparse_edges());
  ASSERT_TRUE(sparse.sparse_edges());

  std::mt19937 mix(99);
  std::vector<int> alive(n);
  for (int u = 0; u < n; ++u) alive[u] = u;
  for (int op = 0; op < 2000; ++op) {
    const int u = alive[mix() % alive.size()];
    int v = alive[mix() % alive.size()];
    while (v == u) v = alive[mix() % alive.size()];
    switch (mix() % 8) {
      case 0:
        dense.set_state(u, static_cast<StateId>(mix() % spec.protocol.state_count()));
        sparse.set_state(u, dense.state(u));
        break;
      case 1:
        if (alive.size() > 8) {
          dense.kill(u);
          sparse.kill(u);
          alive.erase(std::find(alive.begin(), alive.end(), u));
          break;
        }
        [[fallthrough]];
      default: {
        const bool on = (mix() % 3) != 0;  // bias toward building edges
        EXPECT_EQ(dense.set_edge(u, v, on), sparse.set_edge(u, v, on));
        break;
      }
    }
  }

  EXPECT_EQ(dense.active_edge_count(), sparse.active_edge_count());
  EXPECT_EQ(dense.alive_count(), sparse.alive_count());
  std::vector<std::pair<int, int>> dense_edges;
  std::vector<std::pair<int, int>> sparse_edges;
  dense.for_each_active_edge([&](int u, int v) { dense_edges.emplace_back(u, v); });
  sparse.for_each_active_edge([&](int u, int v) { sparse_edges.emplace_back(u, v); });
  std::sort(dense_edges.begin(), dense_edges.end());
  std::sort(sparse_edges.begin(), sparse_edges.end());
  EXPECT_EQ(dense_edges, sparse_edges);
  for (int u = 0; u < n; ++u) {
    EXPECT_EQ(dense.active_degree(u), sparse.active_degree(u));
    EXPECT_EQ(dense.edge(u, (u + 1) % n), sparse.edge(u, (u + 1) % n));
    std::vector<int> dn = dense.active_neighbors(u);
    std::vector<int> sn = sparse.active_neighbors(u);
    std::sort(dn.begin(), dn.end());
    std::sort(sn.begin(), sn.end());
    EXPECT_EQ(dn, sn) << "node " << u;
  }
  EXPECT_EQ(dense.active_graph(), sparse.active_graph());
  EXPECT_EQ(dense.output_graph(spec.protocol), sparse.output_graph(spec.protocol));
}

TEST(SparseWorld, DenseEdgeIterationInvertsPairIndexCorrectly) {
  // The dense word-scan recovers (u, v) from the triangular bit index via
  // a sqrt inversion; probe pairs across the index range, including the
  // extremes of each row.
  const ProtocolSpec spec = *campaign::make_protocol("cycle-cover");
  const int n = 2000;
  World w(spec.protocol, n, World::EdgeStorage::kDense);
  const std::vector<std::pair<int, int>> probes = {
      {0, 1}, {0, 2}, {1, 2}, {0, n - 1}, {n - 2, n - 1}, {500, 501}, {0, 1023}, {1023, 1999}};
  for (const auto& [u, v] : probes) w.set_edge(u, v, true);
  std::vector<std::pair<int, int>> seen;
  w.for_each_active_edge([&](int u, int v) { seen.emplace_back(u, v); });
  std::sort(seen.begin(), seen.end());
  std::vector<std::pair<int, int>> want = probes;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(seen, want);
}

TEST(SparseWorld, AutoStorageCrossesOverAtTheDenseLimit) {
  const ProtocolSpec spec = *campaign::make_protocol("cycle-cover");
  EXPECT_FALSE(World(spec.protocol, 64).sparse_edges());
  EXPECT_TRUE(World(spec.protocol, World::kDenseNodeLimit + 1).sparse_edges());
}

TEST(SparseWorld, CensusEngineStabilizesCycleCoverPastTheDenseLimit) {
  // n just past the bitset budget: the engine's world must come up sparse
  // and still stabilize (cycle cover: every node ends with degree 2, so
  // the active graph carries exactly n edges).
  const ProtocolSpec spec = *campaign::make_protocol("cycle-cover");
  const int n = World::kDenseNodeLimit + 1;
  CensusEngine engine(spec.protocol, n, 2026);
  ASSERT_TRUE(engine.world().sparse_edges());
  const ConvergenceReport report = engine.run_until_stable();
  ASSERT_TRUE(report.stabilized);
  EXPECT_TRUE(report.quiescent);
  EXPECT_EQ(engine.world().active_edge_count(), static_cast<std::int64_t>(n));
  for (int u = 0; u < n; ++u) EXPECT_EQ(engine.world().active_degree(u), 2);
}

}  // namespace
}  // namespace netcons
