// Table 1 processes: completion, correctness of the final configuration, and
// agreement of the measured mean with the closed-form expectation of the
// corresponding proposition.
#include "processes/processes.hpp"

#include "graph/predicates.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

TEST(Processes, AllSevenArePresent) {
  const auto all = all_processes();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all[0].name, "One-way epidemic");
  EXPECT_EQ(all[6].name, "Edge cover");
}

TEST(Processes, EpidemicInfectsEveryone) {
  auto spec = one_way_epidemic();
  Simulator sim(spec.protocol, 12, 3);
  spec.initialize(sim.mutable_world());
  ASSERT_TRUE(sim.run_until(spec.done, 1'000'000).has_value());
  EXPECT_EQ(sim.world().census(*spec.protocol.state_by_name("a")), 12);
}

TEST(Processes, OneToOneLeavesSingleLeader) {
  auto spec = one_to_one_elimination();
  Simulator sim(spec.protocol, 15, 5);
  ASSERT_TRUE(sim.run_until(spec.done, 1'000'000).has_value());
  EXPECT_EQ(sim.world().census(*spec.protocol.state_by_name("a")), 1);
}

TEST(Processes, MaximumMatchingBuildsAMatching) {
  for (int n : {8, 9}) {  // even and odd
    auto spec = maximum_matching();
    Simulator sim(spec.protocol, n, 7);
    ASSERT_TRUE(sim.run_until(spec.done, 1'000'000).has_value());
    EXPECT_TRUE(is_maximum_matching(sim.world().active_graph())) << n;
  }
}

TEST(Processes, OneToAllEliminatesEveryA) {
  auto spec = one_to_all_elimination();
  Simulator sim(spec.protocol, 14, 9);
  ASSERT_TRUE(sim.run_until(spec.done, 1'000'000).has_value());
  EXPECT_EQ(sim.world().census(*spec.protocol.state_by_name("a")), 0);
}

TEST(Processes, MeetEverybodyMarksAllOthers) {
  auto spec = meet_everybody();
  Simulator sim(spec.protocol, 10, 11);
  spec.initialize(sim.mutable_world());
  ASSERT_TRUE(sim.run_until(spec.done, 10'000'000).has_value());
  EXPECT_EQ(sim.world().census(*spec.protocol.state_by_name("m")), 9);
  EXPECT_EQ(sim.world().census(*spec.protocol.state_by_name("a")), 1);
}

TEST(Processes, NodeCoverTouchesEveryNode) {
  auto spec = node_cover();
  Simulator sim(spec.protocol, 13, 13);
  ASSERT_TRUE(sim.run_until(spec.done, 1'000'000).has_value());
  EXPECT_EQ(sim.world().census(*spec.protocol.state_by_name("b")), 13);
}

TEST(Processes, EdgeCoverActivatesAllPairs) {
  auto spec = edge_cover();
  Simulator sim(spec.protocol, 8, 15);
  ASSERT_TRUE(sim.run_until(spec.done, 10'000'000).has_value());
  EXPECT_EQ(sim.world().active_edge_count(), 28);
}

TEST(Processes, RunProcessThrowsNever_SmallSizes) {
  for (const auto& spec : all_processes()) {
    for (int n : {2, 3, 4}) {
      EXPECT_NO_THROW((void)run_process(spec, n, 99)) << spec.name << " n=" << n;
    }
  }
}

/// Parameterized mean-vs-theory agreement: for each process with an exact
/// expectation, the sample mean over many trials must be within 6 standard
/// errors (plus a small slack for the weakest formulas).
class ProcessExpectation : public ::testing::TestWithParam<int> {};

TEST_P(ProcessExpectation, MeanMatchesClosedForm) {
  const auto all = all_processes();
  const auto& spec = all[static_cast<std::size_t>(GetParam())];
  if (!spec.expectation_exact) GTEST_SKIP() << "shape-only expectation";
  const int n = 16;
  const int trials = 120;
  RunningStats stats;
  for (int t = 0; t < trials; ++t) {
    stats.add(static_cast<double>(
        run_process(spec, n, trial_seed(1234, static_cast<std::uint64_t>(t)))));
  }
  const double expected = spec.expected_steps(n);
  const double tolerance = 6.0 * stats.sem() + 0.05 * expected;
  EXPECT_NEAR(stats.mean(), expected, tolerance)
      << spec.name << ": measured " << stats.mean() << " vs theory " << expected;
}

INSTANTIATE_TEST_SUITE_P(AllProcesses, ProcessExpectation, ::testing::Range(0, 7));

/// Scaling property: completion time grows with n for every process.
class ProcessMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(ProcessMonotonicity, MeanGrowsWithPopulation) {
  const auto all = all_processes();
  const auto& spec = all[static_cast<std::size_t>(GetParam())];
  RunningStats small, large;
  for (int t = 0; t < 30; ++t) {
    small.add(static_cast<double>(
        run_process(spec, 8, trial_seed(55, static_cast<std::uint64_t>(t)))));
    large.add(static_cast<double>(
        run_process(spec, 32, trial_seed(77, static_cast<std::uint64_t>(t)))));
  }
  EXPECT_GT(large.mean(), small.mean()) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllProcesses, ProcessMonotonicity, ::testing::Range(0, 7));

}  // namespace
}  // namespace netcons
