#include "util/table.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(0.0), "0.0");
  // Large magnitudes switch to scientific notation.
  EXPECT_NE(TextTable::num(1.5e9).find("e"), std::string::npos);
  EXPECT_EQ(TextTable::integer(42), "42");
}

}  // namespace
}  // namespace netcons
