#include "util/stats.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace netcons {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  RunningStats stats;
  for (double x : xs) stats.add(x);
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, PercentilesInterpolate) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.median(), 3.0);
  EXPECT_DOUBLE_EQ(stats.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(stats.percentile(0.25), 2.0);
  EXPECT_NEAR(stats.percentile(0.1), 1.4, 1e-12);
  RunningStats empty;
  EXPECT_EQ(empty.median(), 0.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.variance(), 0.0);
  stats.add(7.0);
  EXPECT_EQ(stats.mean(), 7.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.sem(), 0.0);
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile q(0.5);
  for (double x : {3.0, 1.0, 2.0}) q.add(x);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
}

TEST(P2Quantile, TracksUniformQuantiles) {
  Rng rng(1234);
  P2Quantile p50(0.5);
  P2Quantile p90(0.9);
  P2Quantile p99(0.99);
  for (int i = 0; i < 50'000; ++i) {
    const double x = rng.uniform();
    p50.add(x);
    p90.add(x);
    p99.add(x);
  }
  EXPECT_NEAR(p50.value(), 0.50, 0.02);
  EXPECT_NEAR(p90.value(), 0.90, 0.02);
  EXPECT_NEAR(p99.value(), 0.99, 0.01);
}

TEST(RunningStats, SwitchesToSketchBeyondExactLimit) {
  RunningStats stats(64);
  for (int i = 0; i < 64; ++i) stats.add(static_cast<double>(i));
  EXPECT_FALSE(stats.sketching());
  stats.add(64.0);
  EXPECT_TRUE(stats.sketching());
  EXPECT_EQ(stats.count(), 65u);
  // Moments and extremes are unaffected by the switch.
  EXPECT_DOUBLE_EQ(stats.mean(), 32.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 64.0);
}

TEST(RunningStats, SketchAgreesWithExactPercentiles) {
  // Same heavy-tailed stream into an effectively-exact instance and a
  // bounded-memory one; the sketch must track the exact order statistics.
  Rng rng(99);
  RunningStats exact(1u << 20);
  RunningStats sketch(256);
  for (int i = 0; i < 50'000; ++i) {
    const double u = rng.uniform();
    const double x = u * u * 1000.0;  // skewed towards 0, long right tail
    exact.add(x);
    sketch.add(x);
  }
  ASSERT_FALSE(exact.sketching());
  ASSERT_TRUE(sketch.sketching());
  for (const double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double truth = exact.percentile(p);
    EXPECT_NEAR(sketch.percentile(p), truth, 0.05 * truth + 1.0) << "p = " << p;
  }
  // Off-grid queries interpolate sanely and stay monotone.
  double previous = sketch.percentile(0.0);
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double value = sketch.percentile(p);
    EXPECT_GE(value, previous);
    previous = value;
  }
  EXPECT_DOUBLE_EQ(sketch.percentile(0.0), sketch.min());
  EXPECT_DOUBLE_EQ(sketch.percentile(1.0), sketch.max());
}

TEST(RunningStats, SketchIsDeterministicInInsertionOrder) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 10'000; ++i) xs.push_back(rng.uniform() * 100.0);
  RunningStats a(128);
  RunningStats b(128);
  for (const double x : xs) a.add(x);
  for (const double x : xs) b.add(x);
  EXPECT_DOUBLE_EQ(a.median(), b.median());
  EXPECT_DOUBLE_EQ(a.percentile(0.9), b.percentile(0.9));
}

TEST(FitLinear, RecoversExactLine) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, RejectsDegenerateInput) {
  std::vector<double> one{1.0};
  EXPECT_THROW((void)fit_linear(one, one), std::invalid_argument);
  std::vector<double> same_x{2.0, 2.0};
  std::vector<double> ys{1.0, 3.0};
  EXPECT_THROW((void)fit_linear(same_x, ys), std::invalid_argument);
}

TEST(FitPowerLaw, RecoversExponent) {
  std::vector<double> xs{10, 20, 40, 80, 160};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * std::pow(x, 2.0));
  const LinearFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-6);
}

TEST(FitPowerLaw, NoisyExponentWithinTolerance) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (double x : {16, 32, 64, 128, 256, 512}) {
    xs.push_back(x);
    ys.push_back(std::pow(x, 1.5) * (0.9 + 0.2 * rng.uniform()));
  }
  const LinearFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 1.5, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitPowerLaw, RejectsNonPositive) {
  std::vector<double> xs{1.0, 0.0};
  std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW((void)fit_power_law(xs, ys), std::invalid_argument);
}

TEST(Harmonic, KnownValues) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_NEAR(harmonic(2), 1.5, 1e-12);
  EXPECT_NEAR(harmonic(100), std::log(100.0) + 0.5772156649, 0.01);
}

TEST(Theory, EpidemicMatchesHarmonicForm) {
  // (n-1) H_{n-1}: Proposition 1.
  EXPECT_NEAR(theory::one_way_epidemic(2), 1.0, 1e-12);
  EXPECT_NEAR(theory::one_way_epidemic(3), 2.0 * 1.5, 1e-12);
  EXPECT_NEAR(theory::one_way_epidemic(100), 99.0 * harmonic(99), 1e-9);
}

TEST(Theory, OneToOneEliminationIsThetaOfNSquared) {
  // The proof shows n(n-1)/2 <= E[X] < 2n^2.
  for (std::uint64_t n : {4ULL, 16ULL, 64ULL, 256ULL}) {
    const double e = theory::one_to_one_elimination(n);
    EXPECT_GE(e, static_cast<double>(n) * static_cast<double>(n - 1) / 2.0);
    EXPECT_LT(e, 2.0 * static_cast<double>(n) * static_cast<double>(n));
  }
}

TEST(Theory, OneToAllBetweenProvenBounds) {
  // Proposition 4: roughly n ln(2n); check the Theta(n log n) window.
  for (std::uint64_t n : {8ULL, 32ULL, 128ULL}) {
    const double e = theory::one_to_all_elimination(n);
    const double nlogn = static_cast<double>(n) * std::log(static_cast<double>(n));
    EXPECT_GT(e, 0.4 * nlogn);
    EXPECT_LT(e, 4.0 * nlogn);
  }
}

TEST(Theory, EdgeCoverIsCouponCollectorOverPairs) {
  const std::uint64_t n = 10;
  const std::uint64_t m = n * (n - 1) / 2;
  EXPECT_NEAR(theory::edge_cover(n), static_cast<double>(m) * harmonic(m), 1e-9);
}

TEST(Theory, MeetEverybodyDominatesEpidemic) {
  for (std::uint64_t n : {8ULL, 64ULL, 256ULL}) {
    EXPECT_GT(theory::meet_everybody(n), theory::one_way_epidemic(n));
  }
}

TEST(EvalOver, AppliesFunction) {
  const std::vector<std::uint64_t> ns{2, 4, 8};
  const auto values = eval_over(ns, theory::n_squared);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 4.0);
  EXPECT_DOUBLE_EQ(values[2], 64.0);
}

}  // namespace
}  // namespace netcons
