#include "util/stats.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace netcons {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  RunningStats stats;
  for (double x : xs) stats.add(x);
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, PercentilesInterpolate) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.median(), 3.0);
  EXPECT_DOUBLE_EQ(stats.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(stats.percentile(0.25), 2.0);
  EXPECT_NEAR(stats.percentile(0.1), 1.4, 1e-12);
  RunningStats empty;
  EXPECT_EQ(empty.median(), 0.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.variance(), 0.0);
  stats.add(7.0);
  EXPECT_EQ(stats.mean(), 7.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.sem(), 0.0);
}

TEST(FitLinear, RecoversExactLine) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, RejectsDegenerateInput) {
  std::vector<double> one{1.0};
  EXPECT_THROW((void)fit_linear(one, one), std::invalid_argument);
  std::vector<double> same_x{2.0, 2.0};
  std::vector<double> ys{1.0, 3.0};
  EXPECT_THROW((void)fit_linear(same_x, ys), std::invalid_argument);
}

TEST(FitPowerLaw, RecoversExponent) {
  std::vector<double> xs{10, 20, 40, 80, 160};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * std::pow(x, 2.0));
  const LinearFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-6);
}

TEST(FitPowerLaw, NoisyExponentWithinTolerance) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (double x : {16, 32, 64, 128, 256, 512}) {
    xs.push_back(x);
    ys.push_back(std::pow(x, 1.5) * (0.9 + 0.2 * rng.uniform()));
  }
  const LinearFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 1.5, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitPowerLaw, RejectsNonPositive) {
  std::vector<double> xs{1.0, 0.0};
  std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW((void)fit_power_law(xs, ys), std::invalid_argument);
}

TEST(Harmonic, KnownValues) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_NEAR(harmonic(2), 1.5, 1e-12);
  EXPECT_NEAR(harmonic(100), std::log(100.0) + 0.5772156649, 0.01);
}

TEST(Theory, EpidemicMatchesHarmonicForm) {
  // (n-1) H_{n-1}: Proposition 1.
  EXPECT_NEAR(theory::one_way_epidemic(2), 1.0, 1e-12);
  EXPECT_NEAR(theory::one_way_epidemic(3), 2.0 * 1.5, 1e-12);
  EXPECT_NEAR(theory::one_way_epidemic(100), 99.0 * harmonic(99), 1e-9);
}

TEST(Theory, OneToOneEliminationIsThetaOfNSquared) {
  // The proof shows n(n-1)/2 <= E[X] < 2n^2.
  for (std::uint64_t n : {4ULL, 16ULL, 64ULL, 256ULL}) {
    const double e = theory::one_to_one_elimination(n);
    EXPECT_GE(e, static_cast<double>(n) * static_cast<double>(n - 1) / 2.0);
    EXPECT_LT(e, 2.0 * static_cast<double>(n) * static_cast<double>(n));
  }
}

TEST(Theory, OneToAllBetweenProvenBounds) {
  // Proposition 4: roughly n ln(2n); check the Theta(n log n) window.
  for (std::uint64_t n : {8ULL, 32ULL, 128ULL}) {
    const double e = theory::one_to_all_elimination(n);
    const double nlogn = static_cast<double>(n) * std::log(static_cast<double>(n));
    EXPECT_GT(e, 0.4 * nlogn);
    EXPECT_LT(e, 4.0 * nlogn);
  }
}

TEST(Theory, EdgeCoverIsCouponCollectorOverPairs) {
  const std::uint64_t n = 10;
  const std::uint64_t m = n * (n - 1) / 2;
  EXPECT_NEAR(theory::edge_cover(n), static_cast<double>(m) * harmonic(m), 1e-9);
}

TEST(Theory, MeetEverybodyDominatesEpidemic) {
  for (std::uint64_t n : {8ULL, 64ULL, 256ULL}) {
    EXPECT_GT(theory::meet_everybody(n), theory::one_way_epidemic(n));
  }
}

TEST(EvalOver, AppliesFunction) {
  const std::vector<std::uint64_t> ns{2, 4, 8};
  const auto values = eval_over(ns, theory::n_squared);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 4.0);
  EXPECT_DOUBLE_EQ(values[2], 64.0);
}

}  // namespace
}  // namespace netcons
