#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace netcons {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, 500);  // ~5 sigma
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, CoinIsFair) {
  Rng rng(17);
  int heads = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.coin()) ++heads;
  }
  EXPECT_NEAR(heads, kSamples / 2, 800);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(19);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, 30000, 900);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(29);
  Rng child1(parent.split());
  Rng child2(parent.split());
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(TrialSeed, DistinctAcrossTrialsAndBases) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base = 0; base < 10; ++base) {
    for (std::uint64_t trial = 0; trial < 100; ++trial) {
      seeds.insert(trial_seed(base, trial));
    }
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

}  // namespace
}  // namespace netcons
