// Output stability is forever: once a constructor's stability condition is
// certified, running arbitrarily many extra steps must never change the
// output graph again (the definition of stabilization in Section 3.1).
#include "protocols/protocols.hpp"

#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

class FreezeMatrix : public ::testing::TestWithParam<int> {};

TEST_P(FreezeMatrix, OutputNeverChangesAfterCertifiedStability) {
  ProtocolSpec spec;
  int n = 9;
  switch (GetParam()) {
    case 0: spec = protocols::global_star(); break;
    case 1: spec = protocols::cycle_cover(); break;
    case 2: spec = protocols::fast_global_line(); break;
    case 3: spec = protocols::two_rc(); n = 6; break;
    case 4: spec = protocols::c_cliques(3); n = 9; break;
    case 5: spec = protocols::replication(Graph::ring(3)); n = 7; break;
    default: spec = protocols::global_ring(); n = 6; break;
  }
  Simulator sim(spec.protocol, n, 31337);
  if (spec.initialize) spec.initialize(sim.mutable_world());
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps ? spec.max_steps(n) : 0;
  options.certificate = spec.certificate;
  const auto report = sim.run_until_stable(options);
  ASSERT_TRUE(report.stabilized) << spec.protocol.name();

  const Graph before = sim.world().output_graph(spec.protocol);
  sim.run(200'000);  // keep scheduling long after stability
  const Graph after = sim.world().output_graph(spec.protocol);
  EXPECT_EQ(before, after) << spec.protocol.name() << " output changed after stabilization";
}

INSTANTIATE_TEST_SUITE_P(Protocols, FreezeMatrix, ::testing::Range(0, 7));

TEST(Freeze, ConvergenceStepNeverMovesAfterStability) {
  const auto spec = protocols::global_star();
  Simulator sim(spec.protocol, 12, 777);
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(12);
  const auto report = sim.run_until_stable(options);
  ASSERT_TRUE(report.stabilized);
  const auto frozen_at = sim.last_output_change();
  sim.run(100'000);
  EXPECT_EQ(sim.last_output_change(), frozen_at);
}

}  // namespace
}  // namespace netcons
