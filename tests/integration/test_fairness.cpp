// Correctness is scheduler-independent: the paper's proofs only assume
// fairness, so every constructor must stabilize to its target under fair
// schedulers other than the uniform random one.
#include "protocols/protocols.hpp"

#include "graph/predicates.hpp"
#include "sched/schedulers.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace netcons {
namespace {

ConvergenceReport run_with(const ProtocolSpec& spec, int n, std::uint64_t seed,
                           std::unique_ptr<Scheduler> sched, Simulator*& out,
                           std::vector<std::unique_ptr<Simulator>>& keep) {
  keep.push_back(std::make_unique<Simulator>(spec.protocol, n, seed, std::move(sched)));
  Simulator& sim = *keep.back();
  if (spec.initialize) spec.initialize(sim.mutable_world());
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps ? spec.max_steps(n) : 0;
  options.certificate = spec.certificate;
  out = &sim;
  return sim.run_until_stable(options);
}

class FairSchedulerMatrix : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FairSchedulerMatrix, ProtocolsStabilizeUnderFairSchedulers) {
  const auto [which_protocol, which_sched] = GetParam();
  ProtocolSpec spec;
  int n = 10;
  switch (which_protocol) {
    case 0: spec = protocols::global_star(); break;
    case 1: spec = protocols::cycle_cover(); break;
    case 2: spec = protocols::simple_global_line(); n = 8; break;
    case 3: spec = protocols::fast_global_line(); n = 8; break;
    default: spec = protocols::spanning_net(); break;
  }
  std::unique_ptr<Scheduler> sched;
  if (which_sched == 0) {
    sched = std::make_unique<RandomPermutationScheduler>();
  } else {
    sched = std::make_unique<StaleBiasedScheduler>(0.3);
  }
  std::vector<std::unique_ptr<Simulator>> keep;
  Simulator* sim = nullptr;
  const auto report = run_with(spec, n, 4242, std::move(sched), sim, keep);
  ASSERT_TRUE(report.stabilized) << spec.protocol.name();
  EXPECT_TRUE(spec.target(sim->world().output_graph(spec.protocol))) << spec.protocol.name();
}

INSTANTIATE_TEST_SUITE_P(Matrix, FairSchedulerMatrix,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(0, 1)));

TEST(Fairness, AdversarialPrefixCannotPreventStarConvergence) {
  // Feed a hostile scripted prefix (repeatedly the same pair), then hand
  // control to the uniform scheduler: the protocol must still stabilize.
  const auto spec = protocols::global_star();
  std::vector<Encounter> hostile(5000, Encounter{0, 1});
  auto sched = std::make_unique<ScriptedScheduler>(hostile, /*strict=*/false);
  Simulator sim(spec.protocol, 8, 99, std::move(sched));
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(8) + 5000;
  const auto report = sim.run_until_stable(options);
  ASSERT_TRUE(report.stabilized);
  EXPECT_TRUE(is_spanning_star(sim.world().output_graph(spec.protocol)));
}

}  // namespace
}  // namespace netcons
