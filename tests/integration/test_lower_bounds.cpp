// Empirical checks of the paper's lower bounds (Theorems 1, 2, 6, 8): every
// measured mean must dominate the corresponding bound's leading term with a
// small constant -- these are the rows of bench_lower_bounds, asserted here
// at test scale.
#include "protocols/protocols.hpp"

#include "analysis/experiment.hpp"
#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

TEST(LowerBounds, SpanningNetDominatesNodeCover) {
  // Theorem 1: any spanning-network constructor needs Omega(n log n).
  const auto spec = protocols::spanning_net();
  for (int n : {32, 64}) {
    const auto point = analysis::measure(spec, n, 15, 1000 + n);
    ASSERT_EQ(point.failures, 0);
    EXPECT_GT(point.convergence_steps.mean(),
              0.2 * theory::n_log_n(static_cast<std::uint64_t>(n)));
  }
}

TEST(LowerBounds, LineProtocolsDominateNSquared) {
  // Theorem 2: any spanning-line constructor needs Omega(n^2).
  for (int which = 0; which < 2; ++which) {
    const auto spec = which == 0 ? protocols::fast_global_line()
                                 : protocols::faster_global_line();
    const int n = 24;
    const auto point = analysis::measure(spec, n, 8, 2000 + which);
    ASSERT_EQ(point.failures, 0);
    EXPECT_GT(point.convergence_steps.mean(),
              0.2 * theory::n_squared(static_cast<std::uint64_t>(n)))
        << spec.protocol.name();
  }
}

TEST(LowerBounds, StarDominatesN2LogN) {
  // Theorem 6: Omega(n^2 log n) for any spanning-star constructor.
  const auto spec = protocols::global_star();
  const int n = 24;
  const auto point = analysis::measure(spec, n, 10, 3000);
  ASSERT_EQ(point.failures, 0);
  EXPECT_GT(point.convergence_steps.mean(),
            0.1 * theory::n_squared_log_n(static_cast<std::uint64_t>(n)));
}

TEST(LowerBounds, SimpleGlobalLineShowsSuperCubicGrowth) {
  // Theorem 3: Omega(n^4) for Simple-Global-Line. At test scale we check
  // the mean grows much faster than n^2 (full exponent fits are in the
  // bench): quadrupling from n=8 to n=16 should multiply time by >> 4.
  const auto spec = protocols::simple_global_line();
  const auto small = analysis::measure(spec, 8, 10, 4000);
  const auto large = analysis::measure(spec, 16, 10, 4001);
  ASSERT_EQ(small.failures, 0);
  ASSERT_EQ(large.failures, 0);
  const double ratio = large.convergence_steps.mean() / small.convergence_steps.mean();
  EXPECT_GT(ratio, 6.0);  // n^2 scaling would give ~4
}

TEST(LowerBounds, CycleCoverIsOptimalUpToConstants) {
  // Theorem 5: Theta(n^2) and optimal; mean/n^2 should be bounded above and
  // below across sizes.
  const auto spec = protocols::cycle_cover();
  for (int n : {24, 48}) {
    const auto point = analysis::measure(spec, n, 10, 5000 + n);
    ASSERT_EQ(point.failures, 0);
    const double normalized =
        point.convergence_steps.mean() / theory::n_squared(static_cast<std::uint64_t>(n));
    EXPECT_GT(normalized, 0.1);
    EXPECT_LT(normalized, 10.0);
  }
}

}  // namespace
}  // namespace netcons
