// Telemetry contracts: registry merge exactness under concurrent writers,
// histogram bucket-edge semantics, snapshot byte-stability, trace-JSON
// well-formedness (parsed with the same JSON reader the campaign uses),
// sampling cadence, and the heartbeat JSONL schema.
#include "campaign/json.hpp"
#include "telemetry/heartbeat.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace netcons::telemetry {
namespace {

TEST(Counter, ConcurrentWritersMergeExactly) {
  Registry registry;
  Counter& counter = registry.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Registry, ConcurrentRegistrationYieldsOneMetricPerName) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> handles(kThreads, nullptr);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &handles, t] {
      handles[static_cast<std::size_t>(t)] = &registry.counter("race.shared");
      registry.add("race.shared", 1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[0], handles[static_cast<std::size_t>(t)]);
  EXPECT_EQ(handles[0]->value(), static_cast<std::uint64_t>(kThreads));
}

TEST(Registry, IdsAreUniquePerInstance) {
  Registry a;
  Registry b;
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.id(), 0u);  // 0 is the thread_local handle caches' "unset"
}

TEST(Histogram, BucketEdgesAreUpperInclusive) {
  Registry registry;
  Histogram& histogram = registry.histogram("test.latency", {1.0, 2.0, 4.0});
  histogram.record(0.5);  // <= 1          -> bucket 0
  histogram.record(1.0);  // == 1 (edge)   -> bucket 0
  histogram.record(1.5);  // <= 2          -> bucket 1
  histogram.record(4.0);  // == 4 (edge)   -> bucket 2
  histogram.record(9.0);  // > 4           -> overflow
  const std::vector<std::uint64_t> counts = histogram.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(Histogram, BoundsAreSortedAndDeduplicated) {
  Registry registry;
  Histogram& histogram = registry.histogram("test.unsorted", {4.0, 1.0, 2.0, 1.0});
  EXPECT_EQ(histogram.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
}

TEST(Histogram, ConcurrentRecordsKeepCountAndSumConsistent) {
  Registry registry;
  Histogram& histogram = registry.histogram("test.conc", {10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram.record(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(histogram.sum(), static_cast<double>(kThreads) * kPerThread);
}

TEST(Registry, SnapshotIsByteStableAndInsertionOrderIndependent) {
  const auto build = [](bool reversed) {
    auto registry = std::make_unique<Registry>();
    const std::vector<std::string> names = {"alpha.count", "beta.count", "gamma.count"};
    if (reversed) {
      for (auto it = names.rbegin(); it != names.rend(); ++it) registry->add(*it, 7);
    } else {
      for (const std::string& name : names) registry->add(name, 7);
    }
    registry->set("rate.gauge", 2.5);
    registry->histogram("occ.hist", {1.0, 2.0}).record(1.5);
    return registry;
  };
  const auto forward = build(false);
  const auto reverse = build(true);
  const std::string snapshot = forward->snapshot_json();
  EXPECT_EQ(snapshot, forward->snapshot_json());  // same state -> same bytes
  EXPECT_EQ(snapshot, reverse->snapshot_json());  // registration order is invisible
}

TEST(Registry, SnapshotParsesWithTheCampaignJsonReader) {
  Registry registry;
  registry.add("engine.steps", 42);
  registry.set("campaign.trials_per_sec", 123.5);
  registry.histogram("census.bucket_occupancy", {1.0, 2.0}).record(0.0);
  const campaign::json::Value document = campaign::json::parse(registry.snapshot_json());
  const campaign::json::Object& object = document.as_object();
  EXPECT_EQ(campaign::json::field(object, "schema").as_string(), "netcons-metrics-v1");
  const campaign::json::Object& counters =
      campaign::json::field(object, "counters").as_object();
  EXPECT_EQ(campaign::json::field(counters, "engine.steps").as_u64(), 42u);
  const campaign::json::Object& histograms =
      campaign::json::field(object, "histograms").as_object();
  const campaign::json::Object& occupancy =
      campaign::json::field(histograms, "census.bucket_occupancy").as_object();
  EXPECT_EQ(campaign::json::field(occupancy, "counts").as_array().size(), 3u);
  EXPECT_EQ(campaign::json::field(occupancy, "count").as_u64(), 1u);
}

TEST(Tracer, MultiThreadedTraceIsWellFormedWithPerThreadTracks) {
  Tracer tracer;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      { Span span(&tracer, "work", "test"); }
      tracer.instant("marker", "test");
    });
  }
  for (std::thread& thread : threads) thread.join();

  const campaign::json::Value document = campaign::json::parse(tracer.to_json());
  const campaign::json::Array& events =
      campaign::json::field(document.as_object(), "traceEvents").as_array();
  // Per thread: one thread_name metadata record, one complete span, one
  // instant marker.
  ASSERT_EQ(events.size(), static_cast<std::size_t>(3 * kThreads));
  std::set<std::uint64_t> span_tids;
  int spans = 0;
  int instants = 0;
  int metadata = 0;
  for (const campaign::json::Value& event : events) {
    const campaign::json::Object& fields = event.as_object();
    const std::string& phase = campaign::json::field(fields, "ph").as_string();
    EXPECT_EQ(campaign::json::field(fields, "pid").as_u64(), 1u);
    if (phase == "X") {
      ++spans;
      span_tids.insert(campaign::json::field(fields, "tid").as_u64());
      EXPECT_GE(campaign::json::field(fields, "dur").as_double(), 0.0);
    } else if (phase == "i") {
      ++instants;
    } else {
      EXPECT_EQ(phase, "M");
      ++metadata;
    }
  }
  EXPECT_EQ(spans, kThreads);
  EXPECT_EQ(instants, kThreads);
  EXPECT_EQ(metadata, kThreads);
  EXPECT_EQ(span_tids.size(), static_cast<std::size_t>(kThreads));  // one track per thread
}

TEST(Tracer, SampleEveryNAdmitsOneInN) {
  Tracer tracer;
  tracer.set_sample_every(4);
  int admitted = 0;
  for (int i = 0; i < 16; ++i) {
    if (tracer.sample()) ++admitted;
  }
  EXPECT_EQ(admitted, 4);
}

TEST(Span, NullTracerIsANoOp) {
  { Span span(nullptr, "nothing", "test"); }  // must not crash or record
  Registry* ambient = registry();
  EXPECT_EQ(ambient, nullptr);  // tests run without ambient telemetry
}

TEST(CampaignMonitor, HeartbeatStreamMatchesSchema) {
  std::ostringstream stream;
  CampaignMonitor::Options options;
  options.period_seconds = 0.0;  // no ticker: begin() and end() emit
  options.heartbeat = &stream;
  options.progress_stderr = false;
  Registry registry;
  options.registry = &registry;
  {
    CampaignMonitor monitor(options);
    monitor.begin(100, 2);
    monitor.record_job(40, 0.25);
    monitor.emit_now();
    monitor.end();
  }

  std::istringstream lines(stream.str());
  std::string line;
  std::vector<campaign::json::Value> points;
  while (std::getline(lines, line)) {
    if (!line.empty()) points.push_back(campaign::json::parse(line));
  }
  ASSERT_GE(points.size(), 3u);  // begin, emit_now, final
  std::uint64_t expected_seq = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const campaign::json::Object& point = points[i].as_object();
    EXPECT_EQ(campaign::json::field(point, "schema").as_string(), "netcons-heartbeat-v1");
    EXPECT_EQ(campaign::json::field(point, "type").as_string(),
              i + 1 == points.size() ? "final" : "heartbeat");
    EXPECT_EQ(campaign::json::field(point, "seq").as_u64(), expected_seq++);
    EXPECT_GE(campaign::json::field(point, "elapsed_s").as_double(), 0.0);
    EXPECT_EQ(campaign::json::field(point, "trials_total").as_u64(), 100u);
    EXPECT_EQ(campaign::json::field(point, "workers").as_u64(), 2u);
    EXPECT_EQ(campaign::json::field(point, "utilization").as_array().size(), 2u);
    const std::uint64_t done = campaign::json::field(point, "trials_done").as_u64();
    EXPECT_EQ(campaign::json::field(point, "queue_depth").as_u64(), 100u - done);
  }
  const campaign::json::Object& last = points.back().as_object();
  EXPECT_EQ(campaign::json::field(last, "trials_done").as_u64(), 40u);
  // The monitor also mirrors its state into the registry.
  EXPECT_EQ(registry.counter("campaign.trials_done").value(), 40u);
  EXPECT_DOUBLE_EQ(registry.gauge("campaign.trials_total").value(), 100.0);
}

TEST(CampaignMonitor, EndIsIdempotent) {
  std::ostringstream stream;
  CampaignMonitor::Options options;
  options.period_seconds = 0.0;
  options.heartbeat = &stream;
  CampaignMonitor monitor(options);
  monitor.begin(10, 1);
  monitor.end();
  const std::string after_first_end = stream.str();
  monitor.end();  // second end() (and the destructor later) must not re-emit
  EXPECT_EQ(stream.str(), after_first_end);
}

}  // namespace
}  // namespace netcons::telemetry
