#include "graph/isomorphism.hpp"

#include "graph/random_graphs.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace netcons {
namespace {

/// Relabel g by a random permutation.
Graph shuffled(const Graph& g, Rng& rng) {
  std::vector<int> perm(static_cast<std::size_t>(g.order()));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  Graph h(g.order());
  for (const auto& [u, v] : g.edges()) {
    h.add_edge(perm[static_cast<std::size_t>(u)], perm[static_cast<std::size_t>(v)]);
  }
  return h;
}

TEST(Isomorphism, BasicShapes) {
  EXPECT_TRUE(are_isomorphic(Graph::line(5), Graph::line(5)));
  EXPECT_TRUE(are_isomorphic(Graph::ring(6), Graph::ring(6)));
  EXPECT_FALSE(are_isomorphic(Graph::line(5), Graph::ring(5)));
  EXPECT_FALSE(are_isomorphic(Graph::star(5), Graph::line(5)));
  EXPECT_FALSE(are_isomorphic(Graph::line(4), Graph::line(5)));
}

TEST(Isomorphism, EmptyAndSingle) {
  EXPECT_TRUE(are_isomorphic(Graph(0), Graph(0)));
  EXPECT_TRUE(are_isomorphic(Graph(1), Graph(1)));
  EXPECT_FALSE(are_isomorphic(Graph(1), Graph(2)));
}

TEST(Isomorphism, DetectsRelabeledCopies) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = sample_gnp(10, 0.4, rng);
    const Graph h = shuffled(g, rng);
    EXPECT_TRUE(are_isomorphic(g, h));
  }
}

TEST(Isomorphism, SameDegreeSequenceDifferentStructure) {
  // C6 vs two disjoint C3: both 2-regular on 6 nodes.
  Graph two_triangles(6);
  for (auto [u, v] : {std::pair{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}) {
    two_triangles.add_edge(u, v);
  }
  EXPECT_FALSE(are_isomorphic(Graph::ring(6), two_triangles));
}

TEST(Isomorphism, PerturbedCopyIsNotIsomorphic) {
  Rng rng(7);
  const Graph g = sample_gnp(9, 0.5, rng);
  Graph h = shuffled(g, rng);
  // Flip one edge; edge counts now differ.
  bool flipped = false;
  for (int u = 0; u < h.order() && !flipped; ++u) {
    for (int v = u + 1; v < h.order() && !flipped; ++v) {
      h.set_edge(u, v, !h.has_edge(u, v));
      flipped = true;
    }
  }
  EXPECT_FALSE(are_isomorphic(g, h));
}

}  // namespace
}  // namespace netcons
