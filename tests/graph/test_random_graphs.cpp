#include "graph/random_graphs.hpp"

#include "graph/predicates.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

TEST(Gnp, ExtremeProbabilities) {
  Rng rng(1);
  EXPECT_EQ(sample_gnp(8, 0.0, rng).edge_count(), 0);
  EXPECT_EQ(sample_gnp(8, 1.0, rng).edge_count(), 28);
}

TEST(Gnp, HalfProbabilityEdgeCountConcentrates) {
  Rng rng(2);
  const int n = 30;
  const double pairs = n * (n - 1) / 2.0;
  double total = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(sample_gnp(n, 0.5, rng).edge_count());
  }
  EXPECT_NEAR(total / trials, pairs / 2.0, pairs * 0.05);
}

TEST(Gnp, RejectsBadProbability) {
  Rng rng(3);
  EXPECT_THROW((void)sample_gnp(5, -0.1, rng), std::invalid_argument);
  EXPECT_THROW((void)sample_gnp(5, 1.1, rng), std::invalid_argument);
}

TEST(Gnp, DeterministicGivenSeed) {
  Rng a(17), b(17);
  EXPECT_EQ(sample_gnp(12, 0.3, a), sample_gnp(12, 0.3, b));
}

TEST(BoundedDegree, ConnectedAndCapped) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = sample_bounded_degree_connected(20, 3, rng);
    EXPECT_TRUE(is_connected(g));
    EXPECT_TRUE(has_max_degree(g, 3));
  }
}

TEST(BoundedDegree, TinyOrders) {
  Rng rng(5);
  EXPECT_EQ(sample_bounded_degree_connected(1, 2, rng).order(), 1);
  const Graph pair = sample_bounded_degree_connected(2, 2, rng);
  EXPECT_TRUE(is_connected(pair));
}

}  // namespace
}  // namespace netcons
