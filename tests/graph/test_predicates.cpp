#include "graph/predicates.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

TEST(Predicates, Connectivity) {
  EXPECT_TRUE(is_connected(Graph::line(5)));
  EXPECT_TRUE(is_connected(Graph(1)));
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_FALSE(is_connected(g));
}

TEST(Predicates, SpanningLine) {
  for (int n : {2, 3, 5, 10}) {
    EXPECT_TRUE(is_spanning_line(Graph::line(n))) << n;
  }
  EXPECT_FALSE(is_spanning_line(Graph::ring(5)));
  EXPECT_FALSE(is_spanning_line(Graph::star(5)));
  // Two disjoint lines with the right degree counts are not spanning.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  EXPECT_FALSE(is_spanning_line(g));
  // Line plus a chord is not a line.
  Graph h = Graph::line(5);
  h.add_edge(0, 4);
  EXPECT_FALSE(is_spanning_line(h));
}

TEST(Predicates, SpanningRing) {
  for (int n : {3, 4, 7}) {
    EXPECT_TRUE(is_spanning_ring(Graph::ring(n))) << n;
  }
  EXPECT_FALSE(is_spanning_ring(Graph::line(5)));
  // Two disjoint triangles: 2-regular but disconnected.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  EXPECT_FALSE(is_spanning_ring(g));
}

TEST(Predicates, SpanningStar) {
  for (int n : {2, 3, 6, 12}) {
    EXPECT_TRUE(is_spanning_star(Graph::star(n))) << n;
  }
  EXPECT_FALSE(is_spanning_star(Graph::line(4)));
  // Star with one extra peripheral edge fails.
  Graph g = Graph::star(5);
  g.add_edge(1, 2);
  EXPECT_FALSE(is_spanning_star(g));
}

TEST(Predicates, CycleCover) {
  // Two disjoint cycles cover everything.
  Graph g(7);
  for (auto [u, v] : {std::pair{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 6}, {6, 3}}) {
    g.add_edge(u, v);
  }
  EXPECT_TRUE(is_cycle_cover(g, 0));
  // One isolated node within waste.
  Graph h(4);
  h.add_edge(0, 1);
  h.add_edge(1, 2);
  h.add_edge(2, 0);
  EXPECT_TRUE(is_cycle_cover(h, 2));
  EXPECT_FALSE(is_cycle_cover(h, 0));
  // A matched pair counts 2 waste.
  Graph m(5);
  m.add_edge(0, 1);
  m.add_edge(1, 2);
  m.add_edge(2, 0);
  m.add_edge(3, 4);
  EXPECT_TRUE(is_cycle_cover(m, 2));
  EXPECT_FALSE(is_cycle_cover(m, 1));
  // A line component disqualifies regardless of waste.
  Graph bad(5);
  bad.add_edge(0, 1);
  bad.add_edge(1, 2);
  EXPECT_FALSE(is_cycle_cover(bad, 5));
}

TEST(Predicates, KRegularRelaxed) {
  EXPECT_TRUE(is_k_regular_connected_relaxed(Graph::ring(6), 2));
  EXPECT_TRUE(is_k_regular_connected(Graph::ring(6), 2));
  EXPECT_TRUE(is_k_regular_connected(Graph::clique(5), 4));
  EXPECT_FALSE(is_k_regular_connected_relaxed(Graph::line(6), 2));  // two deg-1 nodes
  // K4 minus an edge: two nodes of degree 2, two of degree 3 -- the
  // relaxed form for k = 3 allows l = 2 deficient nodes with degree >= 1.
  Graph g = Graph::clique(4);
  g.remove_edge(0, 1);
  EXPECT_TRUE(is_k_regular_connected_relaxed(g, 3));
  EXPECT_FALSE(is_k_regular_connected(g, 3));
}

TEST(Predicates, CliquePartition) {
  // Two triangles on 6 nodes.
  Graph g(6);
  for (auto [u, v] : {std::pair{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}) {
    g.add_edge(u, v);
  }
  EXPECT_TRUE(is_clique_partition(g, 3));
  // 7 nodes: two triangles and one leftover.
  Graph h(7);
  for (auto [u, v] : {std::pair{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}) {
    h.add_edge(u, v);
  }
  EXPECT_TRUE(is_clique_partition(h, 3));
  // A component of 3 that is a path, not a clique.
  Graph p(3);
  p.add_edge(0, 1);
  p.add_edge(1, 2);
  EXPECT_FALSE(is_clique_partition(p, 3));
  // Only one triangle on 6 nodes: not floor(6/3) = 2 cliques.
  Graph q(6);
  q.add_edge(0, 1);
  q.add_edge(1, 2);
  q.add_edge(2, 0);
  EXPECT_FALSE(is_clique_partition(q, 3));
}

TEST(Predicates, MaximumMatching) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  EXPECT_TRUE(is_maximum_matching(g));
  Graph odd(5);
  odd.add_edge(0, 1);
  odd.add_edge(2, 3);
  EXPECT_TRUE(is_maximum_matching(odd));
  odd.add_edge(3, 4);  // degree 2 violation
  EXPECT_FALSE(is_maximum_matching(odd));
}

TEST(Predicates, SpanningNetworkAndMaxDegree) {
  EXPECT_TRUE(is_spanning_network(Graph::line(4)));
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(is_spanning_network(g));  // node 2 uncovered
  EXPECT_TRUE(has_max_degree(Graph::ring(5), 2));
  EXPECT_FALSE(has_max_degree(Graph::star(5), 2));
}

}  // namespace
}  // namespace netcons
