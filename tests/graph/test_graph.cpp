#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace netcons {
namespace {

TEST(Graph, PairIndexIsTriangularAndSymmetric) {
  EXPECT_EQ(Graph::pair_index(0, 1), 0u);
  EXPECT_EQ(Graph::pair_index(1, 0), 0u);
  EXPECT_EQ(Graph::pair_index(0, 2), 1u);
  EXPECT_EQ(Graph::pair_index(1, 2), 2u);
  EXPECT_EQ(Graph::pair_index(0, 3), 3u);
  // Bijective over all pairs of a small n.
  const int n = 12;
  std::vector<bool> seen(Graph::pair_count(n), false);
  for (int v = 1; v < n; ++v) {
    for (int u = 0; u < v; ++u) {
      const auto i = Graph::pair_index(u, v);
      ASSERT_LT(i, seen.size());
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Graph, EdgeSetAndDegreeBookkeeping) {
  Graph g(5);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_TRUE(g.set_edge(1, 3, true));
  EXPECT_FALSE(g.set_edge(1, 3, true));  // no change
  EXPECT_TRUE(g.has_edge(3, 1));
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(3), 1);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_TRUE(g.set_edge(1, 3, false));
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g.degree(1), 0);
}

TEST(Graph, SelfLoopAndRangeChecks) {
  Graph g(3);
  EXPECT_FALSE(g.has_edge(1, 1));
  EXPECT_THROW(g.set_edge(1, 1, true), std::out_of_range);
  EXPECT_THROW(g.set_edge(0, 5, true), std::out_of_range);
}

TEST(Graph, NeighborsAndEdges) {
  Graph g = Graph::star(5);
  EXPECT_EQ(g.neighbors(0), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(g.neighbors(2), (std::vector<int>{0}));
  EXPECT_EQ(g.edges().size(), 4u);
}

TEST(Graph, ComponentsOfDisjointShapes) {
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);  // line 0-1-2
  g.add_edge(3, 4);  // edge 3-4
  const auto comps = g.components();
  ASSERT_EQ(comps.size(), 4u);  // line, edge, and isolated 5, 6
  std::vector<std::size_t> sizes;
  for (const auto& c : comps) sizes.push_back(c.size());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 1, 2, 3}));
}

TEST(Graph, InducedSubgraphRelabels) {
  Graph g = Graph::ring(6);
  const Graph sub = g.induced({0, 1, 2});
  EXPECT_EQ(sub.order(), 3);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(0, 2));  // ring edge 5-0 is not inside
}

TEST(Graph, AdjacencyBitsRoundTrip) {
  Graph g = Graph::line(5);
  const std::string bits = g.adjacency_bits();
  EXPECT_EQ(bits.size(), 25u);
  const auto back = Graph::from_adjacency_bits(bits);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, g);
}

TEST(Graph, FromAdjacencyBitsRejectsBadInput) {
  EXPECT_FALSE(Graph::from_adjacency_bits("010").has_value());  // not square
  // 2x2 "0110" => a(0,1) = a(1,0) = 1, zero diagonal: valid.
  EXPECT_TRUE(Graph::from_adjacency_bits("0110").has_value());
  EXPECT_FALSE(Graph::from_adjacency_bits("0100").has_value());  // asymmetric
  EXPECT_FALSE(Graph::from_adjacency_bits("1001").has_value());  // self loop
  EXPECT_FALSE(Graph::from_adjacency_bits("01x0").has_value());  // bad char
}

TEST(Graph, NamedConstructions) {
  EXPECT_EQ(Graph::line(4).edge_count(), 3);
  EXPECT_EQ(Graph::ring(4).edge_count(), 4);
  EXPECT_EQ(Graph::star(4).edge_count(), 3);
  EXPECT_EQ(Graph::clique(4).edge_count(), 6);
  EXPECT_EQ(Graph::ring(2).edge_count(), 1);  // degenerate ring is one edge
}

TEST(Graph, EqualityIsStructural) {
  Graph a = Graph::line(4);
  Graph b = Graph::line(4);
  EXPECT_EQ(a, b);
  b.add_edge(0, 3);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace netcons
