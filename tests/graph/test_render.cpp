#include "graph/render.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

TEST(Render, DotContainsNodesAndEdges) {
  const Graph g = Graph::star(4);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph \"netcons\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n3"), std::string::npos);
  EXPECT_EQ(dot.find("n1 -- n2"), std::string::npos);
}

TEST(Render, DotLabelsAndColors) {
  DotOptions options;
  options.graph_name = "star";
  options.node_labels = {"c", "p"};
  options.node_colors = {"black", "red"};
  const std::string dot = to_dot(Graph::line(2), options);
  EXPECT_NE(dot.find("label=\"0:c\""), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=\"red\""), std::string::npos);
}

TEST(Render, DirectedUsesArrows) {
  DotOptions options;
  options.directed = true;
  const std::string dot = to_dot(Graph::line(3), options);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Render, AsciiAdjacencyMarksUpperTriangle) {
  Graph g(4);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  const std::string art = ascii_adjacency(g);
  // Row for node 0 ends with '#': edge (0,3); node 1 has '#' at column 2.
  EXPECT_NE(art.find('#'), std::string::npos);
  // There are exactly two active edges drawn.
  EXPECT_EQ(std::count(art.begin(), art.end(), '#'), 2);
}

TEST(Render, DegreeHistogram) {
  EXPECT_EQ(degree_histogram(Graph::star(5)), "deg1:4 deg4:1");
  EXPECT_EQ(degree_histogram(Graph::ring(4)), "deg2:4");
  EXPECT_EQ(degree_histogram(Graph(3)), "deg0:3");
}

}  // namespace
}  // namespace netcons
