#include "serve/http.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

namespace netcons::serve {
namespace {

RequestParser::State feed(RequestParser& parser, const std::string& bytes) {
  return parser.feed(bytes.data(), bytes.size());
}

TEST(RequestParser, ParsesRequestLineHeadersAndBody) {
  RequestParser parser;
  EXPECT_EQ(feed(parser,
                 "POST /v1/campaigns?dry=1 HTTP/1.1\r\n"
                 "Host: localhost\r\n"
                 "Content-Type: application/json\r\n"
                 "Content-Length: 7\r\n"
                 "\r\n"
                 "{\"a\":1}"),
            RequestParser::State::kReady);
  const HttpRequest request = parser.take();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/campaigns?dry=1");
  EXPECT_EQ(request.path, "/v1/campaigns");
  EXPECT_EQ(request.query, "dry=1");
  EXPECT_EQ(request.headers.at("host"), "localhost");  // Names lower-cased.
  EXPECT_EQ(request.headers.at("content-type"), "application/json");
  EXPECT_EQ(request.body, "{\"a\":1}");
}

TEST(RequestParser, AssemblesAcrossArbitrarySplitsAndPipelines) {
  const std::string two_requests =
      "GET /v1/metrics HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /v1/campaigns/abc HTTP/1.1\r\nHost: x\r\n\r\n";
  // One byte at a time: the parser must come up kReady exactly twice.
  RequestParser parser;
  int ready = 0;
  for (const char byte : two_requests) {
    if (parser.feed(&byte, 1) == RequestParser::State::kReady) {
      const HttpRequest request = parser.take();
      EXPECT_EQ(request.method, "GET");
      EXPECT_EQ(request.path, ready == 0 ? "/v1/metrics" : "/v1/campaigns/abc");
      ++ready;
    }
  }
  EXPECT_EQ(ready, 2);

  // Both at once: take() must immediately re-advance onto the second.
  RequestParser pipelined;
  ASSERT_EQ(feed(pipelined, two_requests), RequestParser::State::kReady);
  EXPECT_EQ(pipelined.take().path, "/v1/metrics");
  ASSERT_EQ(pipelined.state(), RequestParser::State::kReady);
  EXPECT_EQ(pipelined.take().path, "/v1/campaigns/abc");
}

TEST(RequestParser, RejectsMalformedAndOversizedRequests) {
  RequestParser bad_line;
  EXPECT_EQ(feed(bad_line, "nonsense\r\n\r\n"), RequestParser::State::kError);
  EXPECT_FALSE(bad_line.error().empty());

  RequestParser old_version;
  EXPECT_EQ(feed(old_version, "GET / HTTP/1.0\r\n\r\n"), RequestParser::State::kError);

  RequestParser chunked;
  EXPECT_EQ(feed(chunked,
                 "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            RequestParser::State::kError);

  RequestParser bad_length;
  EXPECT_EQ(feed(bad_length, "POST / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n"),
            RequestParser::State::kError);

  RequestParser::Limits limits;
  limits.max_body = 8;
  RequestParser big_body(limits);
  EXPECT_EQ(feed(big_body, "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n"),
            RequestParser::State::kError);

  limits = RequestParser::Limits{};
  limits.max_head = 32;
  RequestParser big_head(limits);
  EXPECT_EQ(feed(big_head, "GET /very-long-target-exceeding-the-head-limit HTTP/1.1\r\n"),
            RequestParser::State::kError);
}

TEST(HttpServer, ServesHandlerResponsesOverLoopback) {
  HttpServer::Options options;
  options.threads = 2;
  HttpServer server(options, [](const HttpRequest& request) {
    HttpResponse response;
    if (request.path == "/echo") {
      response.body = request.method + " " + request.body;
    } else if (request.path == "/boom") {
      throw std::runtime_error("handler exploded");
    } else {
      response.status = 404;
      response.body = "{\"missing\": true}\n";
    }
    return response;
  });
  server.start();
  ASSERT_GT(server.port(), 0);

  const FetchResult echoed =
      http_fetch("127.0.0.1", server.port(), "POST", "/echo", "payload");
  EXPECT_EQ(echoed.status, 200);
  EXPECT_EQ(echoed.body, "POST payload");
  EXPECT_EQ(echoed.headers.at("content-type"), "application/json");

  const FetchResult missing = http_fetch("127.0.0.1", server.port(), "GET", "/nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(missing.body, "{\"missing\": true}\n");

  // A throwing handler becomes a 500 envelope, not a dead connection.
  const FetchResult crashed = http_fetch("127.0.0.1", server.port(), "GET", "/boom");
  EXPECT_EQ(crashed.status, 500);
  EXPECT_NE(crashed.body.find("handler exploded"), std::string::npos);

  server.stop();
}

TEST(HttpServer, StreamsFileBodiesAndKeepsConnectionsAlive) {
  const std::filesystem::path artifact =
      std::filesystem::temp_directory_path() /
      ("netcons_test_http_" + std::to_string(static_cast<long>(::getpid())) + ".txt");
  // Larger than one 64 KiB stream chunk so the loop takes several laps.
  std::string contents;
  while (contents.size() < 200u * 1024u) contents += "0123456789abcdef";
  {
    std::ofstream out(artifact, std::ios::binary);
    out << contents;
  }

  HttpServer::Options options;
  HttpServer server(options, [&](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain";
    response.file_path = artifact.string();
    return response;
  });
  server.start();

  const FetchResult fetched = http_fetch("127.0.0.1", server.port(), "GET", "/file");
  EXPECT_EQ(fetched.status, 200);
  EXPECT_EQ(fetched.body, contents);
  EXPECT_EQ(fetched.headers.at("content-length"), std::to_string(contents.size()));

  // Keep-alive: two requests over one connection, by hand.
  fabric::Socket socket = fabric::connect_to("127.0.0.1", server.port(), 10.0);
  const std::string request = "GET /file HTTP/1.1\r\nHost: x\r\n\r\n";
  auto fetch_once = [&]() {
    ASSERT_GT(::send(socket.fd(), request.data(), request.size(), 0), 0);
    std::string raw;
    char buffer[16384];
    const std::string want_length = "Content-Length: " + std::to_string(contents.size());
    while (raw.find("\r\n\r\n") == std::string::npos ||
           raw.size() < raw.find("\r\n\r\n") + 4 + contents.size()) {
      const ssize_t n = ::recv(socket.fd(), buffer, sizeof buffer, 0);
      ASSERT_GT(n, 0);
      raw.append(buffer, static_cast<std::size_t>(n));
    }
    EXPECT_EQ(raw.rfind("HTTP/1.1 200 OK", 0), 0u);
    EXPECT_NE(raw.find("Connection: keep-alive"), std::string::npos);
    EXPECT_NE(raw.find(want_length), std::string::npos);
    EXPECT_EQ(raw.substr(raw.find("\r\n\r\n") + 4), contents);
  };
  fetch_once();
  fetch_once();
  socket.close();

  server.stop();
  std::error_code ec;
  std::filesystem::remove(artifact, ec);
}

TEST(HttpServer, AnswersMalformedRequestsWith400) {
  HttpServer::Options options;
  HttpServer server(options, [](const HttpRequest&) { return HttpResponse{}; });
  server.start();

  fabric::Socket socket = fabric::connect_to("127.0.0.1", server.port(), 10.0);
  const std::string garbage = "GET / SPDY/9\r\n\r\n";
  ASSERT_GT(::send(socket.fd(), garbage.data(), garbage.size(), 0), 0);
  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(socket.fd(), buffer, sizeof buffer, 0);
    if (n <= 0) break;  // Server closes after the 400.
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(raw.rfind("HTTP/1.1 400 Bad Request", 0), 0u);
  EXPECT_NE(raw.find("Connection: close"), std::string::npos);
  socket.close();
  server.stop();
}

TEST(StatusReason, CoversTheApiStatusCodes) {
  EXPECT_EQ(status_reason(200), "OK");
  EXPECT_EQ(status_reason(202), "Accepted");
  EXPECT_EQ(status_reason(400), "Bad Request");
  EXPECT_EQ(status_reason(404), "Not Found");
  EXPECT_EQ(status_reason(405), "Method Not Allowed");
  EXPECT_EQ(status_reason(409), "Conflict");
  EXPECT_EQ(status_reason(500), "Internal Server Error");
  EXPECT_EQ(status_reason(599), "Status");
}

}  // namespace
}  // namespace netcons::serve
