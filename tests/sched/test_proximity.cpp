// ProximityScheduler correctness: the closed-form pair weight, exact
// totals, the grid-bucketed alias sampler's law against brute force, the
// stream-parity contract between next() and weight_model(), and the
// scheduler spec grammar (canonicalization + rejection).
#include "sched/proximity.hpp"

#include "campaign/campaign.hpp"
#include "campaign/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <utility>

namespace netcons {
namespace {

double closed_form_weight(double distance, const ProximityParams& params) {
  if (distance >= params.radius) return ProximityScheduler::kFloor;
  const double shape = 1.0 - distance / params.radius;
  return ProximityScheduler::kFloor +
         (1.0 - ProximityScheduler::kFloor) * std::pow(shape, params.alpha);
}

TEST(ProximityScheduler, PairWeightMatchesTheClosedForm) {
  ProximityParams params;
  params.alpha = 2.0;
  params.radius = 0.3;
  ProximityScheduler scheduler(params);
  Rng rng(11);
  SchedulerWeightModel* model = scheduler.weight_model(rng, 40);
  ASSERT_NE(model, nullptr);
  const spatial::Placement& placement = scheduler.model()->placement();
  for (int u = 0; u < 40; ++u) {
    for (int v = u + 1; v < 40; ++v) {
      const double expected = closed_form_weight(placement.distance(u, v), params);
      EXPECT_NEAR(model->pair_weight(u, v), expected, 1e-12)
          << "pair (" << u << ", " << v << ")";
      EXPECT_EQ(model->pair_weight(u, v), model->pair_weight(v, u));
    }
  }
}

TEST(ProximityScheduler, TotalsAreExactBruteForceSums) {
  // total_weight() must be the exact sum over all unordered pairs (the
  // weighted clock depends on it) and max_weight() a true upper bound
  // (thinning correctness depends on it) -- for every layout.
  for (const spatial::Layout layout :
       {spatial::Layout::kUniform, spatial::Layout::kClustered, spatial::Layout::kGrid}) {
    ProximityParams params;
    params.alpha = 1.5;
    params.radius = 0.25;
    params.layout = layout;
    ProximityScheduler scheduler(params);
    Rng rng(23);
    SchedulerWeightModel* model = scheduler.weight_model(rng, 48);
    ASSERT_NE(model, nullptr);
    double sum = 0.0;
    double max_seen = 0.0;
    for (int u = 0; u < 48; ++u) {
      for (int v = u + 1; v < 48; ++v) {
        const double w = model->pair_weight(u, v);
        EXPECT_GT(w, 0.0);  // the fairness floor: every pair stays selectable
        sum += w;
        max_seen = std::max(max_seen, w);
      }
    }
    EXPECT_NEAR(model->total_weight(), sum, 1e-9 * sum) << spatial::layout_name(layout);
    EXPECT_GE(model->max_weight(), max_seen) << spatial::layout_name(layout);
    EXPECT_LE(model->max_weight(), 1.0 + 1e-12) << spatial::layout_name(layout);
  }
}

TEST(ProximityScheduler, SampleLawMatchesPairWeights) {
  // Empirical sample() frequencies against pair_weight/total_weight. This
  // doubles as the neighbor-list coverage test: a cell pair missing from
  // the alias table would starve its node pairs of the excess component
  // and push their frequencies far outside the tolerance. Grid layout and
  // a fixed seed keep the draw fully deterministic.
  ProximityParams params;
  params.alpha = 2.0;
  params.radius = 0.35;
  params.layout = spatial::Layout::kGrid;
  ProximityScheduler scheduler(params);
  Rng rng(3);
  SchedulerWeightModel* model = scheduler.weight_model(rng, 25);
  ASSERT_NE(model, nullptr);

  const int draws = 400000;
  std::map<std::pair<int, int>, int> counts;
  for (int i = 0; i < draws; ++i) {
    const Encounter e = model->sample(rng);
    ASSERT_NE(e.first, e.second);
    ASSERT_GE(std::min(e.first, e.second), 0);
    ASSERT_LT(std::max(e.first, e.second), 25);
    ++counts[{std::min(e.first, e.second), std::max(e.first, e.second)}];
  }
  for (int u = 0; u < 25; ++u) {
    for (int v = u + 1; v < 25; ++v) {
      const int count = counts[{u, v}];
      const double p = model->pair_weight(u, v) / model->total_weight();
      const double freq = count / static_cast<double>(draws);
      const double sigma = std::sqrt(p * (1.0 - p) / draws);
      EXPECT_NEAR(freq, p, 6.0 * sigma + 1e-9) << "pair (" << u << ", " << v << ")";
      EXPECT_GT(count, 0) << "pair (" << u << ", " << v << ") never sampled";
    }
  }
}

TEST(ProximityScheduler, FirstNextMatchesModelSample) {
  // The stream-parity contract (core/scheduler.hpp): building the model
  // consumes exactly the draws the first next() would, and both paths
  // share one sampler -- same seed, same encounter, same stream state.
  ProximityParams params;
  ProximityScheduler via_next_scheduler(params);
  ProximityScheduler via_model_scheduler(params);
  Rng rng_next(77);
  Rng rng_model(77);
  const Encounter via_next = via_next_scheduler.next(rng_next, 40);
  SchedulerWeightModel* model = via_model_scheduler.weight_model(rng_model, 40);
  ASSERT_NE(model, nullptr);
  const Encounter via_sample = model->sample(rng_model);
  EXPECT_EQ(via_next.first, via_sample.first);
  EXPECT_EQ(via_next.second, via_sample.second);
  EXPECT_EQ(rng_next(), rng_model());
}

TEST(ProximityScheduler, ModelRebuildsWhenThePopulationChanges) {
  ProximityScheduler scheduler(ProximityParams{});
  Rng rng(13);
  SchedulerWeightModel* small = scheduler.weight_model(rng, 16);
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(scheduler.model()->placement().size(), 16);
  SchedulerWeightModel* large = scheduler.weight_model(rng, 32);
  ASSERT_NE(large, nullptr);
  EXPECT_EQ(scheduler.model()->placement().size(), 32);
}

// --- spec grammar ----------------------------------------------------------

TEST(SchedulerRegistry, ProximitySpecCanonicalizes) {
  const auto bare = campaign::make_scheduler("proximity");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->name, "proximity:alpha=2:r=0.1:layout=uniform");
  ASSERT_NE(bare->make, nullptr);

  const auto partial = campaign::make_scheduler("proximity:r=0.25");
  ASSERT_TRUE(partial.has_value());
  EXPECT_EQ(partial->name, "proximity:alpha=2:r=0.25:layout=uniform");

  // Parameters reorder into the fixed alpha/r/layout order, preserving
  // the user's spelling of each value.
  const auto reordered = campaign::make_scheduler("proximity:layout=grid:alpha=1.5");
  ASSERT_TRUE(reordered.has_value());
  EXPECT_EQ(reordered->name, "proximity:alpha=1.5:r=0.1:layout=grid");

  const std::unique_ptr<Scheduler> built = reordered->make();
  const auto* proximity = dynamic_cast<ProximityScheduler*>(built.get());
  ASSERT_NE(proximity, nullptr);
  EXPECT_DOUBLE_EQ(proximity->params().alpha, 1.5);
  EXPECT_DOUBLE_EQ(proximity->params().radius, 0.1);
  EXPECT_EQ(proximity->params().layout, spatial::Layout::kGrid);
}

TEST(SchedulerRegistry, RejectsMalformedProximitySpecs) {
  for (const std::string spec :
       {"proximity:alpha=0", "proximity:alpha=-1", "proximity:r=0", "proximity:r=nope",
        "proximity:layout=ring", "proximity:junk", "proximity:alpha"}) {
    std::string error;
    EXPECT_FALSE(campaign::make_scheduler(spec, &error).has_value()) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(SchedulerRegistry, StaleBiasedSpecParsesBias) {
  const auto bare = campaign::make_scheduler("stale-biased");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->name, "stale-biased");  // the historical bias-0.5 spelling

  const auto biased = campaign::make_scheduler("stale-biased:bias=0.05");
  ASSERT_TRUE(biased.has_value());
  EXPECT_EQ(biased->name, "stale-biased:bias=0.05");
  ASSERT_NE(biased->make, nullptr);
  EXPECT_NE(biased->make(), nullptr);

  std::string error;
  EXPECT_FALSE(campaign::make_scheduler("stale-biased:bias=1", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace netcons
