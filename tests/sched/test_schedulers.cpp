#include "sched/schedulers.hpp"

#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <set>

namespace netcons {
namespace {

TEST(ScriptedScheduler, PlaysScriptThenFallsBack) {
  ScriptedScheduler s({{0, 1}, {2, 3}});
  Rng rng(1);
  auto e1 = s.next(rng, 5);
  EXPECT_EQ(e1.first, 0);
  EXPECT_EQ(e1.second, 1);
  auto e2 = s.next(rng, 5);
  EXPECT_EQ(e2.first, 2);
  EXPECT_EQ(e2.second, 3);
  // Fallback: still a valid pair.
  auto e3 = s.next(rng, 5);
  EXPECT_NE(e3.first, e3.second);
  EXPECT_GE(e3.first, 0);
  EXPECT_LT(e3.first, 5);
}

TEST(ScriptedScheduler, StrictThrowsWhenExhausted) {
  ScriptedScheduler s({{0, 1}}, /*strict=*/true);
  Rng rng(1);
  (void)s.next(rng, 3);
  EXPECT_THROW((void)s.next(rng, 3), std::out_of_range);
  s.reset();
  EXPECT_NO_THROW((void)s.next(rng, 3));
}

TEST(RandomPermutationScheduler, EachRoundCoversAllPairs) {
  RandomPermutationScheduler s;
  Rng rng(7);
  const int n = 6;
  const auto pairs = Graph::pair_count(n);
  for (int round = 0; round < 3; ++round) {
    std::set<std::size_t> seen;
    for (std::size_t i = 0; i < pairs; ++i) {
      const Encounter e = s.next(rng, n);
      EXPECT_NE(e.first, e.second);
      seen.insert(Graph::pair_index(e.first, e.second));
    }
    EXPECT_EQ(seen.size(), pairs) << "round " << round;
  }
}

TEST(RandomPermutationScheduler, AdaptsToPopulationChange) {
  RandomPermutationScheduler s;
  Rng rng(9);
  (void)s.next(rng, 4);
  const Encounter e = s.next(rng, 6);  // population grew mid-run
  EXPECT_LT(e.first, 6);
  EXPECT_LT(e.second, 6);
}

TEST(StaleBiasedScheduler, ProducesValidPairs) {
  StaleBiasedScheduler s(0.7);
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const Encounter e = s.next(rng, 7);
    EXPECT_NE(e.first, e.second);
    EXPECT_GE(std::min(e.first, e.second), 0);
    EXPECT_LT(std::max(e.first, e.second), 7);
  }
}

TEST(StaleBiasedScheduler, EventuallyCoversAllPairs) {
  StaleBiasedScheduler s(0.9);
  Rng rng(13);
  const int n = 5;
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    const Encounter e = s.next(rng, n);
    seen.insert(Graph::pair_index(e.first, e.second));
  }
  EXPECT_EQ(seen.size(), Graph::pair_count(n));
}

TEST(StaleBiasedScheduler, RejectsBadBias) {
  EXPECT_THROW(StaleBiasedScheduler(1.0), std::invalid_argument);
  EXPECT_THROW(StaleBiasedScheduler(-0.1), std::invalid_argument);
}

TEST(UniformRandomScheduler, MarginalsAreUniform) {
  UniformRandomScheduler s;
  Rng rng(17);
  const int n = 5;
  std::vector<int> count(Graph::pair_count(n), 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    const Encounter e = s.next(rng, n);
    ++count[Graph::pair_index(e.first, e.second)];
  }
  const double expected = static_cast<double>(samples) / static_cast<double>(count.size());
  for (int c : count) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

}  // namespace
}  // namespace netcons
