#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace netcons::faults {
namespace {

TEST(FaultPlan, NoneAndEmptyAreEmptyPlans) {
  EXPECT_TRUE(parse_fault_plan("none").empty());
  EXPECT_TRUE(parse_fault_plan("").empty());
  EXPECT_EQ(parse_fault_plan("").name, "none");
}

TEST(FaultPlan, ParsesCrashWithDefaults) {
  const FaultPlan plan = parse_fault_plan("crash:k=2");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.name, "crash:k=2");
  EXPECT_EQ(plan.events[0].kind, FaultKind::Crash);
  EXPECT_EQ(plan.events[0].count, 2);
  EXPECT_TRUE(plan.events[0].stabilization_triggered());
}

TEST(FaultPlan, ParsesScheduledAndPeriodicEvents) {
  const FaultPlan scheduled = parse_fault_plan("edge-burst:f=0.25:at=500");
  ASSERT_EQ(scheduled.events.size(), 1u);
  EXPECT_EQ(scheduled.events[0].kind, FaultKind::EdgeBurst);
  EXPECT_DOUBLE_EQ(scheduled.events[0].fraction, 0.25);
  EXPECT_EQ(scheduled.events[0].at, 500u);
  EXPECT_FALSE(scheduled.events[0].stabilization_triggered());

  const FaultPlan periodic = parse_fault_plan("reset:k=3:every=100:times=4");
  ASSERT_EQ(periodic.events.size(), 1u);
  EXPECT_EQ(periodic.events[0].kind, FaultKind::Reset);
  EXPECT_EQ(periodic.events[0].every, 100u);
  EXPECT_EQ(periodic.events[0].times, 4);
  EXPECT_FALSE(periodic.events[0].stabilization_triggered());
}

TEST(FaultPlan, ParsesRateWithWindow) {
  const FaultPlan plan = parse_fault_plan("edge-rate:p=1e-4:for=5000");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::EdgeRate);
  EXPECT_DOUBLE_EQ(plan.events[0].rate, 1e-4);
  EXPECT_EQ(plan.events[0].window, 5000u);
  EXPECT_FALSE(plan.events[0].stabilization_triggered());
}

TEST(FaultPlan, ComposesEventsWithPlus) {
  const FaultPlan plan = parse_fault_plan("crash:k=1+edge-burst:f=0.2");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::Crash);
  EXPECT_EQ(plan.events[1].kind, FaultKind::EdgeBurst);
}

TEST(FaultPlan, ParsesVictimTargets) {
  EXPECT_EQ(parse_fault_plan("crash:k=1").events[0].target, VictimTarget::Random);
  EXPECT_EQ(parse_fault_plan("crash:k=1:target=random").events[0].target,
            VictimTarget::Random);
  EXPECT_EQ(parse_fault_plan("crash:k=2:target=max-degree").events[0].target,
            VictimTarget::MaxDegree);
  EXPECT_EQ(parse_fault_plan("crash:target=leader:k=1").events[0].target,
            VictimTarget::Leader);  // parameter order is free
  EXPECT_EQ(parse_fault_plan("reset:k=1:target=max-degree").events[0].target,
            VictimTarget::MaxDegree);
  // Targeted events keep their trigger semantics.
  const FaultPlan scheduled = parse_fault_plan("crash:k=1:target=leader:at=500");
  EXPECT_EQ(scheduled.events[0].target, VictimTarget::Leader);
  EXPECT_EQ(scheduled.events[0].at, 500u);
  EXPECT_FALSE(scheduled.events[0].stabilization_triggered());
  // And compose with other events.
  const FaultPlan composed = parse_fault_plan("crash:k=1:target=max-degree+edge-burst:f=0.1");
  ASSERT_EQ(composed.events.size(), 2u);
  EXPECT_EQ(composed.events[0].target, VictimTarget::MaxDegree);
}

TEST(FaultPlan, RejectsBadVictimTargets) {
  // Unknown selector, wrong kind, duplicate, and empty value all quote the
  // grammar like every other parse error.
  EXPECT_THROW((void)parse_fault_plan("crash:k=1:target=centroid"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("edge-burst:f=0.1:target=leader"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("edge-rate:p=1e-4:target=max-degree"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("crash:k=1:target=leader:target=leader"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("crash:k=1:target="), std::invalid_argument);
  try {
    (void)parse_fault_plan("crash:k=1:target=centroid");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("max-degree"), std::string::npos);
    EXPECT_NE(message.find("grammar"), std::string::npos);
  }
}

TEST(FaultPlan, RejectsBadSpecsWithGrammarInMessage) {
  EXPECT_THROW((void)parse_fault_plan("meteor:k=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("crash:q=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("crash:k=0"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("edge-burst:f=1.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("edge-rate:p=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("crash:k=x"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("reset:k=1:times=3"), std::invalid_argument);
  try {
    (void)parse_fault_plan("crash:k=");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("grammar"), std::string::npos);
  }
}

}  // namespace
}  // namespace netcons::faults
