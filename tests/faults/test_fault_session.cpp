#include "faults/fault_session.hpp"

#include "graph/predicates.hpp"
#include "protocols/protocols.hpp"

#include <gtest/gtest.h>

namespace netcons::faults {
namespace {

TEST(FaultSession, EmptyPlanMatchesFaultFreeRun) {
  const ProtocolSpec spec = protocols::global_star();
  Simulator plain(spec.protocol, 16, 7);
  const ConvergenceReport expected = plain.run_until_stable();

  Simulator faulted(spec.protocol, 16, 7);
  FaultSession session(parse_fault_plan("none"), 7);
  const ConvergenceReport actual = run_until_stable_with_faults(faulted, session);

  EXPECT_EQ(actual.stabilized, expected.stabilized);
  EXPECT_EQ(actual.convergence_step, expected.convergence_step);
  EXPECT_EQ(actual.steps_executed, expected.steps_executed);
  EXPECT_EQ(actual.faults_injected, 0u);
}

TEST(FaultSession, CrashRemovesNodesAndReStabilizes) {
  const ProtocolSpec spec = protocols::global_star();
  const int n = 20;
  Simulator sim(spec.protocol, n, 42);
  FaultSession session(parse_fault_plan("crash:k=3"), 42);
  const ConvergenceReport report = run_until_stable_with_faults(sim, session);

  EXPECT_TRUE(report.stabilized);
  EXPECT_EQ(report.faults_injected, 1u);  // one burst event, three victims
  EXPECT_GT(report.last_fault_step, 0u);
  EXPECT_EQ(sim.world().alive_count(), n - 3);
  EXPECT_EQ(sim.world().dead_count(), 3);
  // Dead nodes carry no edges.
  for (int u = 0; u < n; ++u) {
    if (!sim.world().alive(u)) {
      EXPECT_EQ(sim.world().active_degree(u), 0);
    }
  }
}

TEST(FaultSession, GlobalStarRepairsEdgeBurstCompletely) {
  // (c, p, 0) -> (c, p, 1) reconnects severed leaves: the star is one of
  // the few protocols here that repairs edge faults back to the target.
  const ProtocolSpec spec = protocols::global_star();
  Simulator sim(spec.protocol, 24, 3);
  FaultSession session(parse_fault_plan("edge-burst:f=0.5"), 3);
  const ConvergenceReport report = run_until_stable_with_faults(sim, session);

  ASSERT_TRUE(report.stabilized);
  EXPECT_EQ(report.faults_injected, 1u);
  EXPECT_GT(report.output_edges_deleted, 0u);
  EXPECT_EQ(report.output_edges_repaired, report.output_edges_deleted);
  EXPECT_EQ(report.output_edges_residual, 0u);
  EXPECT_GT(report.recovery_steps, 0u);
  EXPECT_TRUE(is_spanning_star(sim.world().output_graph(spec.protocol)));
}

TEST(FaultSession, SimpleGlobalLineKeepsResidualDamageAfterCrash) {
  // Crashing a line node leaves q2 interior nodes that no rule can rewire:
  // the configuration re-stabilizes but the spanning line is gone.
  const ProtocolSpec spec = protocols::simple_global_line();
  Simulator sim(spec.protocol, 12, 11);
  FaultSession session(parse_fault_plan("crash:k=1"), 11);
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(12);
  const ConvergenceReport report = run_until_stable_with_faults(sim, session, options);

  ASSERT_TRUE(report.stabilized);
  EXPECT_EQ(report.faults_injected, 1u);
  EXPECT_EQ(sim.world().alive_count(), 11);
}

TEST(FaultSession, ResetReturnsNodesToInitialState) {
  const ProtocolSpec spec = protocols::global_star();
  Simulator sim(spec.protocol, 16, 5);
  (void)sim.run_until_stable();
  const StateId q0 = spec.protocol.initial_state();
  ASSERT_EQ(sim.world().census(q0), 1);  // the lone center

  FaultSession session(parse_fault_plan("reset:k=4"), 5);
  ASSERT_TRUE(session.fire_on_stabilization(sim));
  // Reset keeps nodes and edges but returns states to q0 (= c here; the
  // ex-center may be among the victims, hence at least 4 centers).
  EXPECT_EQ(sim.world().alive_count(), 16);
  EXPECT_GE(sim.world().census(q0), 4);
  EXPECT_GE(sim.world().active_edge_count(), 1);

  // Global-Star does NOT recover the target from resets: a reset node in c
  // that kept its edge to the center forms a (c, c, 1) pair, for which no
  // rule exists -- the system re-stabilizes into a multi-hub graph. That
  // residual damage is the measurement, so only re-stabilization is
  // guaranteed here.
  const ConvergenceReport report = run_until_stable_with_faults(sim, session);
  EXPECT_TRUE(report.stabilized);
}

TEST(FaultSession, ScheduledAndPeriodicEventsFireBySchedule) {
  const ProtocolSpec spec = protocols::global_star();
  Simulator sim(spec.protocol, 16, 9);
  FaultSession session(parse_fault_plan("edge-burst:f=0.2:at=50:every=100:times=3"), 9);
  const ConvergenceReport report = run_until_stable_with_faults(sim, session);

  ASSERT_TRUE(report.stabilized);
  EXPECT_EQ(report.faults_injected, 3u);
  EXPECT_GE(report.last_fault_step, 250u - 1);  // third firing at step ~250
}

TEST(FaultSession, RateWindowInjectsAndThenCloses) {
  const ProtocolSpec spec = protocols::global_star();
  Simulator sim(spec.protocol, 16, 13);
  // High rate over a short window: essentially guaranteed deletions.
  FaultSession session(parse_fault_plan("edge-rate:p=0.05:for=2000"), 13);
  const ConvergenceReport report = run_until_stable_with_faults(sim, session);

  ASSERT_TRUE(report.stabilized);
  EXPECT_GT(report.faults_injected, 0u);
  EXPECT_LE(report.last_fault_step, 2000u);
  EXPECT_TRUE(is_spanning_star(sim.world().output_graph(spec.protocol)));
}

TEST(FaultSession, IdenticalPlanAndSeedGiveIdenticalTrajectories) {
  const ProtocolSpec spec = protocols::cycle_cover();
  for (const char* plan : {"crash:k=2", "edge-burst:f=0.3", "edge-rate:p=0.01:for=500"}) {
    Simulator a(spec.protocol, 18, 77);
    FaultSession sa(parse_fault_plan(plan), 77);
    const ConvergenceReport ra = run_until_stable_with_faults(a, sa);

    Simulator b(spec.protocol, 18, 77);
    FaultSession sb(parse_fault_plan(plan), 77);
    const ConvergenceReport rb = run_until_stable_with_faults(b, sb);

    EXPECT_EQ(ra.steps_executed, rb.steps_executed) << plan;
    EXPECT_EQ(ra.convergence_step, rb.convergence_step) << plan;
    EXPECT_EQ(ra.faults_injected, rb.faults_injected) << plan;
    EXPECT_EQ(ra.last_fault_step, rb.last_fault_step) << plan;
    EXPECT_EQ(ra.output_edges_deleted, rb.output_edges_deleted) << plan;
    for (int u = 0; u < 18; ++u) {
      EXPECT_EQ(a.world().alive(u), b.world().alive(u)) << plan;
      if (a.world().alive(u) && b.world().alive(u)) {
        EXPECT_EQ(a.world().state(u), b.world().state(u)) << plan;
      }
    }
  }
}

TEST(FaultSession, FaultRngIsIndependentOfSimulatorStream) {
  // The victims chosen must not depend on how many draws the simulator
  // consumed: two different schedule prefixes, same session seed, same
  // victims. We check via the deleted-node set of an immediate crash.
  const ProtocolSpec spec = protocols::global_star();

  auto crashed_set = [&](std::uint64_t sim_seed) {
    Simulator sim(spec.protocol, 16, sim_seed);
    sim.run(123);  // consume an arbitrary amount of simulator randomness
    FaultSession session(parse_fault_plan("crash:k=3"), 555);
    (void)session.fire_on_stabilization(sim);
    std::vector<int> dead;
    for (int u = 0; u < 16; ++u) {
      if (!sim.world().alive(u)) dead.push_back(u);
    }
    return dead;
  };

  EXPECT_EQ(crashed_set(1), crashed_set(2));
}

TEST(FaultSession, MaxDegreeTargetCrashesTheHub) {
  // A stabilized star has one hub of degree n - 1; the adversarial
  // selector must kill exactly it -- the one victim a random k=1 crash
  // almost never picks, and the one Global-Star cannot repair (no rule
  // mints a new center once every survivor is peripheral). The population
  // still re-stabilizes (quiescent), just to a damaged topology.
  const ProtocolSpec spec = protocols::global_star();
  const int n = 14;
  Simulator sim(spec.protocol, n, 9);
  ASSERT_TRUE(sim.run_until_stable().stabilized);
  int hub = 0;
  for (int u = 0; u < n; ++u) {
    if (sim.world().active_degree(u) > sim.world().active_degree(hub)) hub = u;
  }
  ASSERT_EQ(sim.world().active_degree(hub), n - 1);

  FaultSession session(parse_fault_plan("crash:k=1:target=max-degree"), 9);
  ASSERT_TRUE(session.fire_on_stabilization(sim));
  EXPECT_FALSE(sim.world().alive(hub));
  EXPECT_EQ(sim.world().alive_count(), n - 1);
  const ConvergenceReport report = sim.run_until_stable();
  EXPECT_TRUE(report.stabilized);
  EXPECT_FALSE(is_spanning_star(sim.world().output_graph(spec.protocol)));
}

TEST(FaultSession, LeaderTargetCrashesALeaderStateNode) {
  // A stabilized Simple-Global-Line has exactly one node in the leader
  // state 'l'; target=leader must pick it over the q1/q2 followers.
  const ProtocolSpec spec = protocols::simple_global_line();
  const int n = 12;
  Simulator sim(spec.protocol, n, 33);
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(n);
  ASSERT_TRUE(sim.run_until_stable(options).stabilized);
  const StateId l = *spec.protocol.state_by_name("l");
  const std::vector<int> leaders =
      sim.world().nodes_where([l](StateId s) { return s == l; });
  ASSERT_EQ(leaders.size(), 1u);

  FaultSession session(parse_fault_plan("crash:k=1:target=leader"), 33);
  ASSERT_TRUE(session.fire_on_stabilization(sim));
  EXPECT_FALSE(sim.world().alive(leaders[0]));
}

TEST(FaultSession, LeaderTargetPadsWithRandomVictimsWhenLeadersRunOut) {
  // k = 3 against a single-leader line: the leader plus two random others.
  const ProtocolSpec spec = protocols::simple_global_line();
  const int n = 10;
  Simulator sim(spec.protocol, n, 21);
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(n);
  ASSERT_TRUE(sim.run_until_stable(options).stabilized);
  const StateId l = *spec.protocol.state_by_name("l");
  const std::vector<int> leaders =
      sim.world().nodes_where([l](StateId s) { return s == l; });
  ASSERT_EQ(leaders.size(), 1u);

  FaultSession session(parse_fault_plan("crash:k=3:target=leader"), 21);
  ASSERT_TRUE(session.fire_on_stabilization(sim));
  EXPECT_FALSE(sim.world().alive(leaders[0]));
  EXPECT_EQ(sim.world().alive_count(), n - 3);
}

TEST(FaultSession, TargetedSelectionIsDeterministicPerSeed) {
  // Same plan + seed -> same victims, on any engine (the selector draws
  // only from the session's own stream and the world configuration).
  const ProtocolSpec spec = protocols::global_star();
  std::vector<int> dead_a;
  std::vector<int> dead_b;
  for (int run = 0; run < 2; ++run) {
    Simulator sim(spec.protocol, 16, 5);
    ASSERT_TRUE(sim.run_until_stable().stabilized);
    FaultSession session(parse_fault_plan("crash:k=2:target=max-degree"), 5);
    ASSERT_TRUE(session.fire_on_stabilization(sim));
    for (int u = 0; u < 16; ++u) {
      if (!sim.world().alive(u)) (run == 0 ? dead_a : dead_b).push_back(u);
    }
  }
  EXPECT_EQ(dead_a, dead_b);
}

TEST(OutputEdgeCount, CountsAliveOutputPairsOnly) {
  const ProtocolSpec spec = protocols::global_star();
  Simulator sim(spec.protocol, 10, 21);
  (void)sim.run_until_stable();
  const std::uint64_t before = output_edge_count(sim.protocol(), sim.world());
  EXPECT_EQ(before, 9u);  // spanning star over 10 nodes

  // Kill a leaf: its edge leaves the output graph.
  for (int u = 0; u < 10; ++u) {
    if (sim.world().active_degree(u) == 1) {
      sim.mutable_world().kill(u);
      break;
    }
  }
  EXPECT_EQ(output_edge_count(sim.protocol(), sim.world()), 8u);
}

}  // namespace
}  // namespace netcons::faults
