#include "campaign/trial_record.hpp"

#include "campaign/campaign.hpp"
#include "campaign/result_sink.hpp"
#include "protocols/protocols.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

namespace netcons::campaign {
namespace {

namespace fs = std::filesystem;

CampaignSpec small_campaign() {
  CampaignSpec spec;
  spec.units.push_back(Unit::protocol("cycle-cover", protocols::cycle_cover()));
  spec.ns = {8, 12};
  spec.trials = 5;
  spec.base_seed = 77;
  return spec;
}

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("netcons_compact_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream file(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
}

TrialRecord make_record(std::size_t point, int trial, std::uint64_t value) {
  TrialRecord record;
  record.point = point;
  record.trial = trial;
  record.seed = value;
  record.outcome.success = true;
  record.outcome.value = value;
  return record;
}

/// Write one generation file holding `records`.
void write_generation(const fs::path& dir, const CampaignHeader& header, int generation,
                      const std::vector<TrialRecord>& records) {
  std::ofstream file(dir / record_file_name(0, 1, generation));
  file << header_line(header) << '\n';
  for (const TrialRecord& record : records) file << record_line(record) << '\n';
}

TEST(Compaction, ReaderStreamsRecordsInScanOrder) {
  const CampaignHeader header = CampaignHeader::describe(small_campaign());
  const fs::path dir = scratch_dir("reader");
  write_generation(dir, header, 0, {make_record(0, 0, 1), make_record(0, 1, 2)});
  write_generation(dir, header, 1, {make_record(1, 0, 3)});

  TrialRecordReader reader({dir.string()});
  std::vector<std::uint64_t> seen;
  while (const auto record = reader.next()) seen.push_back(record->outcome.value);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(reader.files(), 2u);
  EXPECT_EQ(reader.records(), 3u);
  EXPECT_EQ(reader.discarded_partial(), 0u);
  ASSERT_TRUE(reader.header().has_value());
  EXPECT_EQ(*reader.header(), header);
}

TEST(Compaction, DuplicateTrialsAcrossGenerationsResolveLastWins) {
  const CampaignHeader header = CampaignHeader::describe(small_campaign());
  const fs::path dir = scratch_dir("lastwins");
  // Three generations re-record (0, 0); generation order must win, and the
  // in-file duplicate of generation 1 must lose to its own later line.
  write_generation(dir, header, 0, {make_record(0, 0, 111), make_record(0, 1, 10)});
  write_generation(dir, header, 1,
                   {make_record(0, 0, 221), make_record(0, 0, 222), make_record(1, 0, 20)});
  write_generation(dir, header, 2, {make_record(0, 0, 333)});

  const fs::path out = fs::path(::testing::TempDir()) / "netcons_compact_lastwins.jsonl";
  const CompactionResult result = compact_records({dir.string()}, out.string());
  EXPECT_EQ(result.files, 3u);
  EXPECT_EQ(result.records, 6u);
  EXPECT_EQ(result.duplicates, 3u);
  EXPECT_EQ(result.written, 3u);

  LoadedRecords loaded;
  load_records(out.string(), loaded);
  EXPECT_EQ(loaded.outcomes.at({0, 0}).value, 333u);
  EXPECT_EQ(loaded.outcomes.at({0, 1}).value, 10u);
  EXPECT_EQ(loaded.outcomes.at({1, 0}).value, 20u);
  EXPECT_EQ(loaded.duplicates, 0u);  // The compacted stream itself is clean.
}

TEST(Compaction, TruncatedTailInTheMiddleGenerationIsDiscardedNotFatal) {
  const CampaignHeader header = CampaignHeader::describe(small_campaign());
  const fs::path dir = scratch_dir("midtail");
  write_generation(dir, header, 0, {make_record(0, 0, 1)});
  write_generation(dir, header, 1, {make_record(0, 1, 2), make_record(0, 2, 3)});
  write_generation(dir, header, 2, {make_record(0, 3, 4)});

  // Chop generation 1 mid-line: its final record becomes a partial write.
  const fs::path middle = dir / record_file_name(0, 1, 1);
  fs::resize_file(middle, fs::file_size(middle) - 7);

  const fs::path out = fs::path(::testing::TempDir()) / "netcons_compact_midtail.jsonl";
  const CompactionResult result = compact_records({dir.string()}, out.string());
  EXPECT_EQ(result.discarded_partial, 1u);
  EXPECT_EQ(result.written, 3u);  // (0,0), (0,1), (0,3); the chopped (0,2) is gone.

  LoadedRecords loaded;
  load_records(out.string(), loaded);
  EXPECT_EQ(loaded.outcomes.count({0, 2}), 0u);
  EXPECT_EQ(loaded.outcomes.at({0, 3}).value, 4u);
}

TEST(Compaction, CompactOfCompactIsAFixedPoint) {
  const CampaignSpec spec = small_campaign();
  const fs::path dir = scratch_dir("fixedpoint");
  const CampaignHeader header = CampaignHeader::describe(spec);

  // A messy input: two generations, duplicates, records out of grid order.
  write_generation(dir, header, 0,
                   {make_record(1, 4, 1), make_record(0, 2, 2), make_record(1, 0, 3)});
  write_generation(dir, header, 1, {make_record(0, 2, 22), make_record(0, 0, 4)});

  const fs::path once = fs::path(::testing::TempDir()) / "netcons_compact_once.jsonl";
  const fs::path twice = fs::path(::testing::TempDir()) / "netcons_compact_twice.jsonl";
  const CompactionResult first = compact_records({dir.string()}, once.string());
  const CompactionResult second = compact_records({once.string()}, twice.string());

  EXPECT_EQ(first.written, 4u);
  EXPECT_EQ(second.records, first.written);
  EXPECT_EQ(second.duplicates, 0u);
  EXPECT_EQ(slurp(once), slurp(twice));  // Byte-for-byte: the fixed point.
}

TEST(Compaction, CompactedRecordsAreInCanonicalTrialOrder) {
  const CampaignHeader header = CampaignHeader::describe(small_campaign());
  const fs::path dir = scratch_dir("order");
  write_generation(dir, header, 0,
                   {make_record(1, 3, 1), make_record(0, 4, 2), make_record(1, 0, 3),
                    make_record(0, 0, 4)});

  const fs::path out = fs::path(::testing::TempDir()) / "netcons_compact_order.jsonl";
  compact_records({dir.string()}, out.string());

  TrialRecordReader reader({out.string()});
  std::vector<std::pair<std::size_t, int>> positions;
  while (const auto record = reader.next()) positions.emplace_back(record->point, record->trial);
  EXPECT_EQ(positions, (std::vector<std::pair<std::size_t, int>>{
                           {0, 0}, {0, 4}, {1, 0}, {1, 3}}));
}

TEST(Compaction, ValidatesAgainstAnExpectedHeader) {
  const CampaignSpec spec = small_campaign();
  const fs::path dir = scratch_dir("expected");
  write_generation(dir, CampaignHeader::describe(spec), 0, {make_record(0, 0, 1)});

  const fs::path out = fs::path(::testing::TempDir()) / "netcons_compact_expected.jsonl";
  CampaignSpec other = small_campaign();
  other.base_seed = 78;
  const CampaignHeader mismatched = CampaignHeader::describe(other);
  EXPECT_THROW(compact_records({dir.string()}, out.string(), &mismatched), std::runtime_error);

  const CampaignHeader matching = CampaignHeader::describe(spec);
  EXPECT_EQ(compact_records({dir.string()}, out.string(), &matching).written, 1u);
}

TEST(Compaction, EmptyInputSetIsAnError) {
  const fs::path dir = scratch_dir("empty");
  const fs::path out = fs::path(::testing::TempDir()) / "netcons_compact_empty.jsonl";
  EXPECT_THROW(compact_records({dir.string()}, out.string()), std::runtime_error);
}

TEST(Compaction, MergeFromCompactedMatchesMergeFromGenerations) {
  // End to end on a live campaign: interrupt (trial cap), resume — two
  // generations plus duplicates — then compact, and check both record sets
  // reduce to byte-identical summaries.
  const CampaignSpec spec = small_campaign();
  const fs::path dir = scratch_dir("endtoend");
  const CampaignHeader header = CampaignHeader::describe(spec);

  {
    TrialRecordSink sink((dir / record_file_name(0, 1, 0)).string(), header);
    RunOptions options;
    options.trial_cap = 7;
    options.on_trial = [&sink](std::size_t point, int trial, std::uint64_t seed,
                               const TrialOutcome& outcome) {
      sink.write(TrialRecord{point, trial, seed, outcome});
    };
    ASSERT_FALSE(run(spec, options).complete);
  }
  LoadedRecords partial;
  partial.header = header;
  load_records(dir.string(), partial);
  {
    TrialRecordSink sink((dir / record_file_name(0, 1, 1)).string(), header);
    RunOptions options;
    options.resume = &partial.outcomes;
    options.on_trial = [&sink](std::size_t point, int trial, std::uint64_t seed,
                               const TrialOutcome& outcome) {
      sink.write(TrialRecord{point, trial, seed, outcome});
    };
    ASSERT_TRUE(run(spec, options).complete);
  }

  const fs::path compacted = fs::path(::testing::TempDir()) / "netcons_compact_endtoend.jsonl";
  compact_records({dir.string()}, compacted.string());

  const auto merge = [&](const std::string& path) {
    LoadedRecords loaded;
    load_records(path, loaded);
    std::vector<std::vector<TrialOutcome>> outcomes(loaded.header->points.size());
    for (std::size_t p = 0; p < outcomes.size(); ++p) {
      outcomes[p].resize(static_cast<std::size_t>(loaded.header->trials));
      for (int t = 0; t < loaded.header->trials; ++t) {
        outcomes[p][static_cast<std::size_t>(t)] = loaded.outcomes.at({p, t});
      }
    }
    return to_json(reduce_outcomes(loaded.header->points, loaded.header->trials, outcomes));
  };
  EXPECT_EQ(merge(dir.string()), merge(compacted.string()));
}

}  // namespace
}  // namespace netcons::campaign
