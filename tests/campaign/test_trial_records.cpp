#include "campaign/trial_record.hpp"

#include "campaign/campaign.hpp"
#include "campaign/registry.hpp"
#include "campaign/result_sink.hpp"
#include "protocols/protocols.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

namespace netcons::campaign {
namespace {

namespace fs = std::filesystem;

CampaignSpec small_campaign() {
  CampaignSpec spec;
  spec.units.push_back(Unit::protocol("cycle-cover", protocols::cycle_cover()));
  spec.units.push_back(Unit::protocol("global-star", protocols::global_star()));
  spec.ns = {8, 12};
  spec.trials = 6;
  spec.base_seed = 7;
  return spec;
}

/// Fresh per-test scratch directory under the gtest temp root.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("netcons_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Run `spec` while streaming records into `dir` as shard `index`/`count`.
CampaignResult run_recorded(const CampaignSpec& spec, const fs::path& dir, int shard_index = 0,
                            int shard_count = 1, std::uint64_t trial_cap = 0,
                            const OutcomeMap* resume = nullptr) {
  const CampaignHeader header = CampaignHeader::describe(spec);
  const int generation = next_generation(dir.string(), shard_index, shard_count);
  TrialRecordSink sink((dir / record_file_name(shard_index, shard_count, generation)).string(),
                       header);
  RunOptions options;
  options.threads = 2;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  options.trial_cap = trial_cap;
  options.resume = resume;
  options.on_trial = [&sink](std::size_t point, int trial, std::uint64_t seed,
                             const TrialOutcome& outcome) {
    sink.write(TrialRecord{point, trial, seed, outcome});
  };
  return run(spec, options);
}

/// Rebuild a CampaignResult from every record in `dir` (must be complete).
CampaignResult merge_dir(const fs::path& dir) {
  LoadedRecords loaded;
  load_records(dir.string(), loaded);
  const CampaignHeader& header = *loaded.header;
  std::vector<std::vector<TrialOutcome>> outcomes(header.points.size());
  for (std::size_t p = 0; p < header.points.size(); ++p) {
    outcomes[p].resize(static_cast<std::size_t>(header.trials));
    for (int t = 0; t < header.trials; ++t) {
      outcomes[p][static_cast<std::size_t>(t)] = loaded.outcomes.at({p, t});
    }
  }
  return reduce_outcomes(header.points, header.trials, outcomes);
}

TEST(TrialRecords, HeaderLineRoundTrips) {
  const CampaignSpec spec = small_campaign();
  const CampaignHeader header = CampaignHeader::describe(spec);
  ASSERT_EQ(header.points.size(), 4u);
  EXPECT_EQ(header.trials, 6);
  EXPECT_EQ(parse_header_line(header_line(header)), header);
}

TEST(TrialRecords, RecordLineRoundTripsIncludingErrorEscapes) {
  TrialRecord record;
  record.point = 3;
  record.trial = 41;
  record.seed = 0xDEADBEEFCAFEBABEull;
  record.outcome.success = false;
  record.outcome.target_ok = true;
  record.outcome.value = 123456789;
  record.outcome.steps_executed = 987654321;
  record.outcome.faults_injected = 2;
  record.outcome.recovery_steps = 17;
  record.outcome.edges_deleted = 5;
  record.outcome.edges_repaired = 4;
  record.outcome.edges_residual = 1;
  record.outcome.error = "line\ntab\t\"quote\"";

  const TrialRecord parsed = parse_record_line(record_line(record));
  EXPECT_EQ(parsed.point, record.point);
  EXPECT_EQ(parsed.trial, record.trial);
  EXPECT_EQ(parsed.seed, record.seed);
  EXPECT_EQ(parsed.outcome.success, record.outcome.success);
  EXPECT_EQ(parsed.outcome.target_ok, record.outcome.target_ok);
  EXPECT_EQ(parsed.outcome.value, record.outcome.value);
  EXPECT_EQ(parsed.outcome.steps_executed, record.outcome.steps_executed);
  EXPECT_EQ(parsed.outcome.faults_injected, record.outcome.faults_injected);
  EXPECT_EQ(parsed.outcome.recovery_steps, record.outcome.recovery_steps);
  EXPECT_EQ(parsed.outcome.edges_deleted, record.outcome.edges_deleted);
  EXPECT_EQ(parsed.outcome.edges_repaired, record.outcome.edges_repaired);
  EXPECT_EQ(parsed.outcome.edges_residual, record.outcome.edges_residual);
  EXPECT_EQ(parsed.outcome.error, record.outcome.error);
}

TEST(TrialRecords, SinkStreamRebuildsTheExactSummary) {
  const CampaignSpec spec = small_campaign();
  const fs::path dir = scratch_dir("sink_rebuild");
  const CampaignResult live = run_recorded(spec, dir);
  ASSERT_TRUE(live.complete);

  LoadedRecords loaded;
  load_records(dir.string(), loaded);
  EXPECT_EQ(loaded.files, 1u);
  EXPECT_EQ(loaded.records, live.total_trials);
  EXPECT_EQ(loaded.duplicates, 0u);
  EXPECT_EQ(loaded.discarded_partial, 0u);

  // Byte-identical summaries: the acceptance criterion, at the API level.
  EXPECT_EQ(to_json(merge_dir(dir)), to_json(live));
  EXPECT_EQ(to_csv(merge_dir(dir)), to_csv(live));
}

TEST(TrialRecords, ShardsPartitionEveryTrialExactlyOnce) {
  const int trials = 7;
  const std::size_t points = 5;
  for (const int k : {1, 2, 3, 4}) {
    for (std::size_t p = 0; p < points; ++p) {
      for (int t = 0; t < trials; ++t) {
        int owners = 0;
        for (int i = 0; i < k; ++i) owners += in_shard(p, t, trials, i, k) ? 1 : 0;
        ASSERT_EQ(owners, 1) << "p=" << p << " t=" << t << " k=" << k;
      }
    }
  }
}

TEST(TrialRecords, ShardedRunsMergeToTheUnshardedBytes) {
  const CampaignSpec spec = small_campaign();
  const CampaignResult unsharded = run(spec);

  const fs::path dir = scratch_dir("sharded");
  std::uint64_t executed = 0;
  for (int i = 0; i < 3; ++i) {
    const CampaignResult shard = run_recorded(spec, dir, i, 3);
    EXPECT_FALSE(shard.complete);
    EXPECT_TRUE(shard.points.empty());
    executed += shard.executed_trials;
  }
  EXPECT_EQ(executed, unsharded.total_trials);

  EXPECT_EQ(to_json(merge_dir(dir)), to_json(unsharded));
  EXPECT_EQ(to_csv(merge_dir(dir)), to_csv(unsharded));
}

TEST(TrialRecords, TrialCapInterruptsAndResumeReachesTheSameBytes) {
  const CampaignSpec spec = small_campaign();
  const CampaignResult uninterrupted = run(spec);

  const fs::path dir = scratch_dir("resume");
  const CampaignResult capped = run_recorded(spec, dir, 0, 1, /*trial_cap=*/9);
  EXPECT_FALSE(capped.complete);
  EXPECT_EQ(capped.executed_trials, 9u);

  LoadedRecords loaded;
  loaded.header = CampaignHeader::describe(spec);
  load_records(dir.string(), loaded);
  ASSERT_EQ(loaded.outcomes.size(), 9u);

  const CampaignResult resumed = run_recorded(spec, dir, 0, 1, 0, &loaded.outcomes);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_trials, 9u);
  EXPECT_EQ(resumed.executed_trials, uninterrupted.total_trials - 9u);
  EXPECT_EQ(to_json(resumed), to_json(uninterrupted));

  // The two generations in the directory also merge to the same bytes.
  EXPECT_EQ(to_json(merge_dir(dir)), to_json(uninterrupted));
}

TEST(TrialRecords, TruncatedTrailingLineIsDiscardedAndRedone) {
  const CampaignSpec spec = small_campaign();
  const fs::path dir = scratch_dir("truncated");
  const CampaignResult live = run_recorded(spec, dir);
  ASSERT_TRUE(live.complete);

  // Simulate a kill mid-write: chop the file inside its final line.
  const fs::path file = dir / record_file_name(0, 1, 0);
  const auto size = fs::file_size(file);
  fs::resize_file(file, size - 10);

  LoadedRecords loaded;
  loaded.header = CampaignHeader::describe(spec);
  load_records(dir.string(), loaded);
  EXPECT_EQ(loaded.discarded_partial, 1u);
  EXPECT_EQ(loaded.outcomes.size(), live.total_trials - 1);

  // Resume executes exactly the trial whose record was cut short, and the
  // final summary is unaffected by the interruption.
  const CampaignResult resumed = run_recorded(spec, dir, 0, 1, 0, &loaded.outcomes);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.executed_trials, 1u);
  EXPECT_EQ(to_json(resumed), to_json(live));
}

TEST(TrialRecords, DuplicateRecordsLastWins) {
  const CampaignSpec spec = small_campaign();
  const CampaignHeader header = CampaignHeader::describe(spec);

  const fs::path dir = scratch_dir("duplicates");
  TrialRecord first;
  first.point = 0;
  first.trial = 0;
  first.seed = 1;
  first.outcome.success = true;
  first.outcome.value = 111;
  TrialRecord second = first;
  second.outcome.value = 222;

  {
    std::ofstream file(dir / record_file_name(0, 1, 0));
    file << header_line(header) << '\n'
         << record_line(first) << '\n'
         << record_line(second) << '\n';
  }
  LoadedRecords loaded;
  load_records(dir.string(), loaded);
  EXPECT_EQ(loaded.records, 2u);
  EXPECT_EQ(loaded.duplicates, 1u);
  EXPECT_EQ(loaded.outcomes.at({0, 0}).value, 222u);

  // Across files: a later generation supersedes an earlier one (scan order
  // is sorted file name, and generations zero-pad so names sort by age).
  TrialRecord third = first;
  third.outcome.value = 333;
  {
    std::ofstream file(dir / record_file_name(0, 1, 1));
    file << header_line(header) << '\n' << record_line(third) << '\n';
  }
  LoadedRecords again;
  load_records(dir.string(), again);
  EXPECT_EQ(again.duplicates, 2u);
  EXPECT_EQ(again.outcomes.at({0, 0}).value, 333u);
}

TEST(TrialRecords, MismatchedSpecIsAHardErrorNamingTheField) {
  const CampaignSpec spec = small_campaign();
  const fs::path dir = scratch_dir("mismatch");
  (void)run_recorded(spec, dir);

  const auto expect_mismatch = [&](const CampaignSpec& other, const std::string& field) {
    LoadedRecords loaded;
    loaded.header = CampaignHeader::describe(other);
    try {
      load_records(dir.string(), loaded);
      FAIL() << "expected a header mismatch on " << field;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("different campaign"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos) << e.what();
    }
  };

  CampaignSpec different_seed = small_campaign();
  different_seed.base_seed = 8;
  expect_mismatch(different_seed, "base_seed");

  CampaignSpec different_trials = small_campaign();
  different_trials.trials = 12;
  expect_mismatch(different_trials, "trials");

  CampaignSpec different_n = small_campaign();
  different_n.ns = {8, 16};
  expect_mismatch(different_n, "n");

  CampaignSpec different_unit = small_campaign();
  different_unit.units[1] = Unit::protocol("global-ring", protocols::global_ring());
  expect_mismatch(different_unit, "unit");

  CampaignSpec fewer_points = small_campaign();
  fewer_points.ns = {8};
  expect_mismatch(fewer_points, "points");
}

TEST(TrialRecords, EngineAxisIsPartOfTheFingerprint) {
  // Records written under one engine must not resume or merge into a
  // campaign declared with another: the mismatch is a hard error naming
  // the engine field.
  CampaignSpec census_spec = small_campaign();
  census_spec.engines.push_back(*make_engine("census"));
  const fs::path dir = scratch_dir("engine_fingerprint");
  (void)run_recorded(census_spec, dir);

  CampaignSpec naive_spec = small_campaign();
  naive_spec.engines.push_back(*make_engine("naive"));
  LoadedRecords loaded;
  loaded.header = CampaignHeader::describe(naive_spec);
  try {
    load_records(dir.string(), loaded);
    FAIL() << "expected a header mismatch on engine";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("engine"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("census"), std::string::npos) << e.what();
  }

  // And the header round-trips the engine name through its JSONL form.
  const CampaignHeader header = CampaignHeader::describe(census_spec);
  const CampaignHeader parsed = parse_header_line(header_line(header));
  EXPECT_EQ(parsed, header);
  ASSERT_FALSE(parsed.points.empty());
  EXPECT_EQ(parsed.points[0].engine, "census");
}

TEST(TrialRecords, MalformedInteriorLineIsCorruptionNotACrash) {
  const CampaignSpec spec = small_campaign();
  const CampaignHeader header = CampaignHeader::describe(spec);
  const fs::path dir = scratch_dir("corrupt");
  TrialRecord record;
  record.outcome.success = true;
  {
    std::ofstream file(dir / record_file_name(0, 1, 0));
    file << header_line(header) << '\n'
         << "{this is not json}\n"
         << record_line(record) << '\n';
  }
  LoadedRecords loaded;
  EXPECT_THROW(load_records(dir.string(), loaded), std::runtime_error);
}

TEST(TrialRecords, RecordsOutsideTheGridAreHardErrors) {
  const CampaignSpec spec = small_campaign();
  const CampaignHeader header = CampaignHeader::describe(spec);
  const fs::path dir = scratch_dir("out_of_grid");
  TrialRecord record;
  record.point = header.points.size();  // One past the end.
  {
    std::ofstream file(dir / record_file_name(0, 1, 0));
    file << header_line(header) << '\n' << record_line(record) << '\n';
  }
  LoadedRecords loaded;
  EXPECT_THROW(load_records(dir.string(), loaded), std::runtime_error);
}

TEST(TrialRecords, GenerationsAdvancePerShard) {
  const fs::path dir = scratch_dir("generations");
  EXPECT_EQ(next_generation(dir.string(), 0, 1), 0);
  { std::ofstream file(dir / record_file_name(0, 1, 0)); }
  EXPECT_EQ(next_generation(dir.string(), 0, 1), 1);
  // Other shards are unaffected.
  EXPECT_EQ(next_generation(dir.string(), 1, 2), 0);
}

}  // namespace
}  // namespace netcons::campaign
