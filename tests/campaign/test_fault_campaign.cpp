// Campaign-level fault-axis contract: grid expansion, recovery aggregates,
// and the determinism acceptance criterion -- identical FaultPlan + seed
// must produce bit-identical campaign JSON for any thread count.
#include "campaign/campaign.hpp"

#include "campaign/registry.hpp"
#include "campaign/result_sink.hpp"
#include "protocols/protocols.hpp"

#include <gtest/gtest.h>

namespace netcons::campaign {
namespace {

CampaignSpec faulted_campaign() {
  CampaignSpec spec;
  spec.units.push_back(Unit::protocol("simple-global-line", protocols::simple_global_line()));
  spec.units.push_back(Unit::protocol("global-star", protocols::global_star()));
  spec.faults.push_back(*make_fault_plan("none"));
  spec.faults.push_back(*make_fault_plan("crash:k=1"));
  spec.faults.push_back(*make_fault_plan("edge-burst:f=0.2"));
  spec.ns = {12};
  spec.trials = 8;
  spec.base_seed = 2026;
  return spec;
}

TEST(FaultCampaign, FaultAxisExpandsTheGrid) {
  const CampaignResult result = run(faulted_campaign());
  ASSERT_EQ(result.points.size(), 6u);  // 2 units x 3 plans x 1 n
  EXPECT_EQ(result.points[0].faults, "none");
  EXPECT_EQ(result.points[1].faults, "crash:k=1");
  EXPECT_EQ(result.points[2].faults, "edge-burst:f=0.2");
}

TEST(FaultCampaign, RecoveryAggregatesArePopulatedOnlyUnderFaults) {
  const CampaignResult result = run(faulted_campaign());
  for (const auto& point : result.points) {
    if (point.faults == "none") {
      EXPECT_EQ(point.faults_injected.count(), 0u);
      EXPECT_EQ(point.recovery_steps.count(), 0u);
      EXPECT_EQ(point.damaged, 0);
    } else {
      EXPECT_EQ(point.faults_injected.count(), static_cast<std::size_t>(point.trials));
      EXPECT_GT(point.faults_injected.mean(), 0.0);
    }
  }
}

TEST(FaultCampaign, StarRepairsWhileLineKeepsDamage) {
  const CampaignResult result = run(faulted_campaign());
  for (const auto& point : result.points) {
    if (point.faults != "edge-burst:f=0.2") continue;
    EXPECT_EQ(point.failures, 0) << point.unit;  // all trials re-stabilize
    if (point.unit == "global-star") {
      // Every deleted star edge is rebuilt; target always restored.
      EXPECT_EQ(point.damaged, 0);
      EXPECT_DOUBLE_EQ(point.edges_residual.mean(), 0.0);
      EXPECT_GT(point.edges_repaired.mean(), 0.0);
    }
  }
}

TEST(FaultCampaign, JsonIsBitIdenticalAcrossThreadCounts) {
  // The acceptance criterion of the fault subsystem: a faulted campaign's
  // JSON (and CSV) must not depend on --threads.
  const CampaignSpec spec = faulted_campaign();
  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 8;

  const CampaignResult a = run(spec, serial);
  const CampaignResult b = run(spec, parallel);
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(to_csv(a), to_csv(b));
}

TEST(FaultCampaign, NoFaultAxisKeepsLegacySeedsAndSemantics) {
  // Without a fault axis the grid (and thus every per-trial seed) must be
  // laid out exactly as before the axis existed: same point seeds as an
  // explicit single "none" plan, and target misses still count as failures.
  CampaignSpec implicit;
  implicit.units.push_back(Unit::protocol("global-star", protocols::global_star()));
  implicit.ns = {8, 12};
  implicit.trials = 5;
  implicit.base_seed = 7;

  CampaignSpec explicit_none = implicit;
  explicit_none.faults.push_back(*make_fault_plan("none"));

  const CampaignResult a = run(implicit);
  const CampaignResult b = run(explicit_none);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].seed, b.points[i].seed);
    EXPECT_EQ(summarize(a.points[i]), summarize(b.points[i]));
  }
}

TEST(FaultRegistry, ParsesAndRejectsPlans) {
  EXPECT_TRUE(make_fault_plan("crash:k=2").has_value());
  std::string error;
  EXPECT_FALSE(make_fault_plan("meteor:x=1", &error).has_value());
  EXPECT_NE(error.find("grammar"), std::string::npos);
  EXPECT_FALSE(fault_plan_examples().empty());
}

}  // namespace
}  // namespace netcons::campaign
