#include "campaign/campaign.hpp"

#include "campaign/job_queue.hpp"
#include "campaign/registry.hpp"
#include "campaign/result_sink.hpp"
#include "campaign/seeds.hpp"
#include "protocols/protocols.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace netcons::campaign {
namespace {

CampaignSpec small_mixed_campaign() {
  CampaignSpec spec;
  spec.units.push_back(Unit::protocol("cycle-cover", protocols::cycle_cover()));
  spec.units.push_back(Unit::process(one_way_epidemic()));
  spec.ns = {8, 12};
  spec.trials = 10;
  spec.base_seed = 42;
  return spec;
}

std::vector<PointSummary> summaries(const CampaignResult& result) {
  std::vector<PointSummary> out;
  for (const auto& point : result.points) out.push_back(summarize(point));
  return out;
}

TEST(Campaign, ThreadCountDoesNotChangeAggregates) {
  const CampaignSpec spec = small_mixed_campaign();
  RunOptions one_thread;
  one_thread.threads = 1;
  RunOptions eight_threads;
  eight_threads.threads = 8;

  const CampaignResult serial = run(spec, one_thread);
  const CampaignResult parallel = run(spec, eight_threads);

  ASSERT_EQ(serial.points.size(), 4u);  // 2 units x 2 ns
  EXPECT_EQ(serial.threads, 1);
  EXPECT_EQ(parallel.threads, 8);
  // Bit-identical aggregates: PointSummary compares doubles with ==.
  EXPECT_EQ(summaries(serial), summaries(parallel));
}

TEST(Campaign, ShardSizeDoesNotChangeAggregates) {
  const CampaignSpec spec = small_mixed_campaign();
  RunOptions tiny_shards;
  tiny_shards.threads = 3;
  tiny_shards.shard_size = 1;
  RunOptions one_big_shard;
  one_big_shard.threads = 2;
  one_big_shard.shard_size = 1000;

  EXPECT_EQ(summaries(run(spec, tiny_shards)), summaries(run(spec, one_big_shard)));
}

TEST(Campaign, EmptyGridsProduceNoPoints) {
  CampaignSpec no_units;
  no_units.ns = {8};
  no_units.trials = 5;
  EXPECT_TRUE(run(no_units).points.empty());

  CampaignSpec no_ns;
  no_ns.units.push_back(Unit::protocol("cycle-cover", protocols::cycle_cover()));
  no_ns.trials = 5;
  EXPECT_TRUE(run(no_ns).points.empty());

  CampaignSpec no_trials = small_mixed_campaign();
  no_trials.trials = 0;
  const CampaignResult result = run(no_trials);
  ASSERT_EQ(result.points.size(), 4u);
  EXPECT_EQ(result.total_trials, 0u);
  for (const auto& point : result.points) {
    EXPECT_EQ(point.convergence_steps.count(), 0u);
    EXPECT_EQ(point.failures, 0);
  }
}

TEST(Campaign, TimeoutsAreCountedAsFailures) {
  ProtocolSpec starved = protocols::global_star();
  // A 2-step budget cannot stabilize n = 8, so every trial must fail.
  starved.max_steps = [](int) { return std::uint64_t{2}; };
  CampaignSpec spec;
  spec.units.push_back(Unit::protocol("starved-star", starved));
  spec.ns = {8};
  spec.trials = 6;

  const CampaignResult result = run(spec);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points.front().failures, 6);
  EXPECT_EQ(result.points.front().convergence_steps.count(), 0u);
  EXPECT_EQ(result.total_failures, 6u);
}

TEST(Campaign, ThrowingTargetCountsAsFailureWithoutAborting) {
  ProtocolSpec hostile = protocols::cycle_cover();
  hostile.target = [](const Graph&) -> bool { throw std::runtime_error("boom"); };
  CampaignSpec spec;
  spec.units.push_back(Unit::protocol("hostile", hostile));
  spec.units.push_back(Unit::protocol("cycle-cover", protocols::cycle_cover()));
  spec.ns = {8};
  spec.trials = 4;

  const CampaignResult result = run(spec);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.points[0].failures, 4);
  EXPECT_EQ(result.points[0].first_error, "boom");
  EXPECT_EQ(result.points[1].failures, 0);
  EXPECT_TRUE(result.points[1].first_error.empty());
}

TEST(Campaign, SchedulerAxisExpandsTheGrid) {
  CampaignSpec spec;
  spec.units.push_back(Unit::protocol("cycle-cover", protocols::cycle_cover()));
  spec.ns = {8};
  spec.trials = 4;
  spec.schedulers.push_back(*make_scheduler("uniform"));
  spec.schedulers.push_back(*make_scheduler("permutation"));

  const CampaignResult result = run(spec);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.points[0].scheduler, "uniform");
  EXPECT_EQ(result.points[1].scheduler, "permutation");
  for (const auto& point : result.points) EXPECT_EQ(point.failures, 0);
}

TEST(Campaign, EngineAxisExpandsTheGridInDeclaredOrder) {
  CampaignSpec spec;
  spec.units.push_back(Unit::protocol("global-star", protocols::global_star()));
  spec.ns = {8, 12};
  spec.trials = 5;
  spec.engines.push_back(*make_engine("naive"));
  spec.engines.push_back(*make_engine("census"));

  const std::vector<GridPoint> grid = expand_grid(spec);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].engine, "naive");
  EXPECT_EQ(grid[0].n, 8);
  EXPECT_EQ(grid[1].engine, "naive");
  EXPECT_EQ(grid[1].n, 12);
  EXPECT_EQ(grid[2].engine, "census");
  EXPECT_EQ(grid[2].n, 8);
  EXPECT_EQ(grid[3].engine, "census");
  EXPECT_EQ(grid[3].n, 12);

  const CampaignResult result = run(spec);
  ASSERT_EQ(result.points.size(), 4u);
  for (const auto& point : result.points) {
    EXPECT_EQ(point.failures, 0) << point.engine << " n=" << point.n;
    EXPECT_GT(point.convergence_steps.mean(), 0.0);
  }
  // Both engines stabilize the star; their per-point means live on the
  // same scale (loose 3x sanity band -- the CI KS gate is the sharp check).
  EXPECT_LT(result.points[0].convergence_steps.mean(),
            3.0 * result.points[2].convergence_steps.mean());
  EXPECT_LT(result.points[2].convergence_steps.mean(),
            3.0 * result.points[0].convergence_steps.mean());
}

TEST(Campaign, OmittedEngineAxisKeepsGridPositionsAndSeeds) {
  // A declared one-option naive axis must not move grid positions or
  // per-trial seeds relative to a spec with no engine axis at all (the
  // compatibility contract that keeps old record fingerprints meaningful).
  CampaignSpec bare;
  bare.units.push_back(Unit::protocol("cycle-cover", protocols::cycle_cover()));
  bare.ns = {8, 12};
  bare.trials = 3;
  bare.base_seed = 99;

  CampaignSpec declared = bare;
  declared.engines.push_back(*make_engine("naive"));

  const std::vector<GridPoint> bare_grid = expand_grid(bare);
  const std::vector<GridPoint> declared_grid = expand_grid(declared);
  ASSERT_EQ(bare_grid.size(), declared_grid.size());
  for (std::size_t i = 0; i < bare_grid.size(); ++i) {
    EXPECT_EQ(bare_grid[i], declared_grid[i]) << "grid point " << i;
    EXPECT_EQ(bare_grid[i].engine, "naive");
  }
}

TEST(Campaign, JsonRoundTripsBitExactly) {
  const CampaignResult result = run(small_mixed_campaign());
  const std::string json = to_json(result);
  const std::vector<PointSummary> parsed = parse_json(json);
  EXPECT_EQ(parsed, summaries(result));
}

TEST(Campaign, CsvHasHeaderAndOneRowPerPoint) {
  const CampaignResult result = run(small_mixed_campaign());
  const std::string csv = to_csv(result);
  std::size_t lines = 0;
  for (const char c : csv) lines += (c == '\n');
  EXPECT_EQ(lines, result.points.size() + 1);
  EXPECT_EQ(csv.rfind("unit,scheduler,faults,engine,n,", 0), 0u);
}

TEST(Campaign, ParseJsonRejectsGarbage) {
  EXPECT_THROW((void)parse_json("not json"), std::runtime_error);
  EXPECT_THROW((void)parse_json("{\"schema\": \"x\"}"), std::runtime_error);
  EXPECT_THROW((void)parse_json("{\"points\": [{}]}"), std::runtime_error);
}

TEST(Seeds, StreamMatchesTrialSeedAndChildStreamsDiffer) {
  EXPECT_EQ(stream_seed(99, 7), trial_seed(99, 7));
  const SeedStream campaign_stream(1);
  const SeedStream point0 = campaign_stream.child(0);
  const SeedStream point1 = campaign_stream.child(1);
  EXPECT_NE(point0.at(0), point1.at(0));
  EXPECT_NE(point0.at(0), point0.at(1));
}

TEST(Registry, EngineRegistryResolvesAndRejects) {
  EXPECT_EQ(engine_names().size(), 3u);
  const auto naive = make_engine("naive");
  ASSERT_TRUE(naive.has_value());
  EXPECT_EQ(naive->name, "naive");
  EXPECT_FALSE(naive->make);  // null factory: the reference engine
  const auto census = make_engine("census");
  ASSERT_TRUE(census.has_value());
  EXPECT_EQ(census->name, "census");
  ASSERT_TRUE(static_cast<bool>(census->make));
  const auto engine = census->make(protocols::global_star().protocol, 8, 1, nullptr);
  ASSERT_NE(engine, nullptr);
  EXPECT_STREQ(engine->engine_name(), "census");
  const auto leap = make_engine("census-leap");
  ASSERT_TRUE(leap.has_value());
  EXPECT_EQ(leap->name, "census-leap");
  ASSERT_TRUE(static_cast<bool>(leap->make));
  const auto leap_engine = leap->make(protocols::global_star().protocol, 8, 1, nullptr);
  ASSERT_NE(leap_engine, nullptr);
  EXPECT_STREQ(leap_engine->engine_name(), "census-leap");
  EXPECT_FALSE(make_engine("warp").has_value());
}

TEST(Registry, ResolvesKnownNamesAndRejectsUnknown) {
  EXPECT_TRUE(make_protocol("global-star").has_value());
  EXPECT_FALSE(make_protocol("no-such-protocol").has_value());
  ASSERT_FALSE(process_names().empty());
  EXPECT_TRUE(make_process(process_names().front()).has_value());
  EXPECT_FALSE(make_process("no-such-process").has_value());
  EXPECT_TRUE(make_scheduler("stale-biased").has_value());
  EXPECT_FALSE(make_scheduler("no-such-scheduler").has_value());
  // Parameterized families honour their parameters.
  const auto krc3 = make_protocol("krc", ProtocolParams{3, 3, 3});
  ASSERT_TRUE(krc3.has_value());
  EXPECT_EQ(krc3->protocol.state_count(), 2 * (3 + 1));
}

TEST(JobQueue, RunsEveryJobExactlyOnceAndPropagatesErrors) {
  std::vector<std::atomic<int>> hits(64);
  run_jobs(hits.size(), 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);

  EXPECT_THROW(
      run_jobs(8, 4,
               [](std::size_t i) {
                 if (i == 3) throw std::logic_error("job failure");
               }),
      std::logic_error);
}

}  // namespace
}  // namespace netcons::campaign
