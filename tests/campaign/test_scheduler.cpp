#include "campaign/scheduler.hpp"

#include "campaign/campaign.hpp"
#include "campaign/result_sink.hpp"
#include "protocols/protocols.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include <unistd.h>

namespace netcons::campaign {
namespace {

/// Per-test scratch cache, deleted on every exit path.
struct ScratchCache {
  std::filesystem::path path;
  ScratchCache()
      : path(std::filesystem::temp_directory_path() /
             ("netcons_test_scheduler_" + std::to_string(static_cast<long>(::getpid())) + "_" +
              std::to_string(next()))) {}
  ~ScratchCache() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  static int next() {
    static std::atomic<int> counter{0};
    return counter.fetch_add(1);
  }
};

CampaignSpec tiny_campaign(std::uint64_t seed = 42) {
  CampaignSpec spec;
  spec.units.push_back(Unit::protocol("cycle-cover", protocols::cycle_cover()));
  spec.ns = {8};
  spec.trials = 4;
  spec.base_seed = seed;
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Scheduler::Options cache_options(const ScratchCache& scratch) {
  Scheduler::Options options;
  options.cache_dir = scratch.path.string();
  options.threads = 2;
  return options;
}

TEST(SpecFingerprint, IsStableAndHeaderSensitive) {
  const CampaignSpec spec = tiny_campaign();
  const CampaignHeader header = CampaignHeader::describe(spec);
  const std::string id = spec_fingerprint(header);
  EXPECT_EQ(id.size(), 16u);
  EXPECT_EQ(id.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(id, spec_fingerprint(CampaignHeader::describe(spec)));

  CampaignSpec more_trials = spec;
  more_trials.trials = 5;
  EXPECT_NE(id, spec_fingerprint(CampaignHeader::describe(more_trials)));
  CampaignSpec other_seed = spec;
  other_seed.base_seed = 43;
  EXPECT_NE(id, spec_fingerprint(CampaignHeader::describe(other_seed)));
}

TEST(Scheduler, RejectsEmptyCacheDir) {
  Scheduler::Options options;
  EXPECT_THROW(Scheduler scheduler(options), std::runtime_error);
}

TEST(Scheduler, CoalescesIdenticalInFlightSubmits) {
  const ScratchCache scratch;
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> executions{0};

  Scheduler::Options options = cache_options(scratch);
  options.executor = [&](const CampaignSpec& spec, const RunOptions& run_options) {
    executions.fetch_add(1);
    released.wait();
    return run(spec, run_options);
  };
  Scheduler scheduler(options);

  std::atomic<int> observers{0};
  const Scheduler::Submitted first =
      scheduler.submit(tiny_campaign(), JobDispatch::kLocal,
                       [&](const JobStatus& status) {
                         EXPECT_EQ(status.state, JobState::kDone);
                         observers.fetch_add(1);
                       });
  EXPECT_FALSE(first.cached);
  EXPECT_FALSE(first.coalesced);

  // Same spec while the first job is queued/running: attach, don't rerun.
  const Scheduler::Submitted second =
      scheduler.submit(tiny_campaign(), JobDispatch::kLocal,
                       [&](const JobStatus&) { observers.fetch_add(1); });
  EXPECT_EQ(second.id, first.id);
  EXPECT_FALSE(second.cached);
  EXPECT_TRUE(second.coalesced);

  release.set_value();
  const JobStatus status = scheduler.wait(first.id);
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.trials_done, status.trials_total);
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(observers.load(), 2);
}

TEST(Scheduler, PollTracksLifecycleAndRejectsUnknownIds) {
  const ScratchCache scratch;
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  Scheduler::Options options = cache_options(scratch);
  options.executor = [&](const CampaignSpec& spec, const RunOptions& run_options) {
    released.wait();
    return run(spec, run_options);
  };
  Scheduler scheduler(options);

  EXPECT_FALSE(scheduler.poll("0123456789abcdef").has_value());
  EXPECT_THROW((void)scheduler.wait("0123456789abcdef"), std::runtime_error);

  const Scheduler::Submitted submitted = scheduler.submit(tiny_campaign());
  const std::optional<JobStatus> early = scheduler.poll(submitted.id);
  ASSERT_TRUE(early.has_value());
  EXPECT_TRUE(early->state == JobState::kQueued || early->state == JobState::kRunning);
  EXPECT_EQ(early->trials_total, 4u);
  EXPECT_FALSE(early->records_dir.empty());
  // Artifacts are unavailable until the job completes.
  EXPECT_EQ(scheduler.artifact_path(submitted.id, "summary.json"), "");

  release.set_value();
  const JobStatus done = scheduler.wait(submitted.id);
  EXPECT_EQ(done.state, JobState::kDone);
  EXPECT_EQ(done.trials_done, 4u);
  EXPECT_TRUE(done.error.empty());
  EXPECT_NE(scheduler.artifact_path(submitted.id, "summary.json"), "");
}

TEST(Scheduler, ServesRepeatSubmitsFromCacheAcrossInstances) {
  const ScratchCache scratch;
  std::atomic<int> executions{0};
  std::string id;
  {
    Scheduler::Options options = cache_options(scratch);
    options.executor = [&](const CampaignSpec& spec, const RunOptions& run_options) {
      executions.fetch_add(1);
      return run(spec, run_options);
    };
    Scheduler scheduler(options);
    id = scheduler.submit(tiny_campaign()).id;
    scheduler.wait(id);
    EXPECT_EQ(executions.load(), 1);

    // Re-submit in the same instance: answered synchronously from cache.
    bool observed = false;
    const Scheduler::Submitted again =
        scheduler.submit(tiny_campaign(), JobDispatch::kLocal, [&](const JobStatus& status) {
          EXPECT_TRUE(status.cached);
          observed = true;
        });
    EXPECT_TRUE(again.cached);
    EXPECT_TRUE(observed);
    EXPECT_EQ(executions.load(), 1);
  }

  // A fresh scheduler over the same cache directory: still a hit, and the
  // cached bytes are exactly what the one-shot CLI path would emit.
  Scheduler::Options options = cache_options(scratch);
  options.executor = [&](const CampaignSpec& spec, const RunOptions& run_options) {
    executions.fetch_add(1);
    return run(spec, run_options);
  };
  Scheduler scheduler(options);
  const Scheduler::Submitted hit = scheduler.submit(tiny_campaign());
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(executions.load(), 1);

  const std::optional<JobStatus> polled = scheduler.poll(id);
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->state, JobState::kDone);
  EXPECT_TRUE(polled->cached);

  const std::string summary_path = scheduler.artifact_path(id, "summary.json");
  ASSERT_FALSE(summary_path.empty());
  EXPECT_EQ(read_file(summary_path), to_json(run(tiny_campaign())));
}

TEST(Scheduler, EvictsLeastRecentlyUsedEntriesBeyondTheCap) {
  const ScratchCache scratch;
  Scheduler::Options options = cache_options(scratch);
  options.cache_max_entries = 1;
  Scheduler scheduler(options);

  const std::string first = scheduler.submit(tiny_campaign(1)).id;
  scheduler.wait(first);
  ASSERT_NE(scheduler.artifact_path(first, "summary.json"), "");

  const std::string second = scheduler.submit(tiny_campaign(2)).id;
  scheduler.wait(second);

  // The cap keeps only the newest entry; the older one is gone from disk.
  EXPECT_EQ(scheduler.artifact_path(first, "summary.json"), "");
  EXPECT_NE(scheduler.artifact_path(second, "summary.json"), "");
}

TEST(Scheduler, FailedJobsReportTheErrorAndRetryOnResubmit) {
  const ScratchCache scratch;
  std::atomic<int> executions{0};
  Scheduler::Options options = cache_options(scratch);
  options.executor = [&](const CampaignSpec& spec,
                         const RunOptions& run_options) -> CampaignResult {
    if (executions.fetch_add(1) == 0) throw std::runtime_error("induced failure");
    return run(spec, run_options);
  };
  Scheduler scheduler(options);

  const std::string id = scheduler.submit(tiny_campaign()).id;
  const JobStatus failed = scheduler.wait(id);
  EXPECT_EQ(failed.state, JobState::kFailed);
  EXPECT_NE(failed.error.find("induced failure"), std::string::npos);
  EXPECT_EQ(scheduler.artifact_path(id, "summary.json"), "");

  // A failed job is not sticky: re-submitting re-enqueues it.
  const Scheduler::Submitted retry = scheduler.submit(tiny_campaign());
  EXPECT_EQ(retry.id, id);
  EXPECT_FALSE(retry.cached);
  const JobStatus done = scheduler.wait(id);
  EXPECT_EQ(done.state, JobState::kDone);
  EXPECT_EQ(executions.load(), 2);
}

}  // namespace
}  // namespace netcons::campaign
