// CoordinatorCore: the lease grant/expiry/reassignment state machine,
// driven with an explicit fake clock (no sockets anywhere). The invariant
// under test throughout: slots, never leases, decide completion — so
// worker deaths, reassignments, and double-completions can change *who*
// executes a trial but never whether it is counted exactly once.
#include "fabric/lease.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <set>

namespace {

using netcons::fabric::CoordinatorCore;
using netcons::fabric::CoreOptions;
using netcons::fabric::Lease;

using Clock = CoordinatorCore::Clock;

Clock::time_point t0() { return Clock::time_point{} + std::chrono::seconds(1000); }

CoreOptions options(int lease_size, int deadline_seconds = 10) {
  CoreOptions opt;
  opt.lease_size = lease_size;
  opt.deadline = std::chrono::seconds(deadline_seconds);
  return opt;
}

TEST(CoordinatorCore, GrantsGridInOrderAndCapsLeaseSize) {
  CoordinatorCore core(2, 10, options(4));
  const int worker = core.connect(t0());

  // 10 trials per point / lease 4 -> ranges 0-4, 4-8, 8-10 per point.
  const auto a = core.grant(worker, t0());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->range.point, 0u);
  EXPECT_EQ(a->range.begin, 0);
  EXPECT_EQ(a->range.end, 4);

  const auto b = core.grant(worker, t0());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->range.begin, 4);
  EXPECT_EQ(b->range.end, 8);

  const auto c = core.grant(worker, t0());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->range.begin, 8);
  EXPECT_EQ(c->range.end, 10);

  const auto d = core.grant(worker, t0());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->range.point, 1u);
  EXPECT_EQ(d->range.begin, 0);
}

TEST(CoordinatorCore, CompletingEveryLeaseReachesDone) {
  CoordinatorCore core(3, 7, options(5));
  const int worker = core.connect(t0());
  while (auto lease = core.grant(worker, t0())) {
    EXPECT_EQ(core.complete(worker, lease->id, t0()), lease->range.trials());
  }
  EXPECT_TRUE(core.done());
  EXPECT_EQ(core.committed(), 21u);
  EXPECT_EQ(core.outstanding(), 0u);
  EXPECT_EQ(core.pending(), 0u);
}

TEST(CoordinatorCore, NothingGrantableWhileAllWorkIsLeasedOut) {
  CoordinatorCore core(1, 4, options(4));
  const int w1 = core.connect(t0());
  const int w2 = core.connect(t0());
  const auto lease = core.grant(w1, t0());
  ASSERT_TRUE(lease.has_value());
  // The whole grid is outstanding: w2 gets nothing, but the campaign is
  // not done — this is the "wait" state.
  EXPECT_FALSE(core.grant(w2, t0()).has_value());
  EXPECT_FALSE(core.done());
}

TEST(CoordinatorCore, ExpiryRequeuesToTheFrontAndMarksTheWorkerDead) {
  CoordinatorCore core(2, 8, options(4, 10));
  const int doomed = core.connect(t0());
  const int survivor = core.connect(t0());
  const auto lease = core.grant(doomed, t0());
  ASSERT_TRUE(lease.has_value());

  // Survivor keeps heartbeating; the doomed worker goes silent.
  const auto later = t0() + std::chrono::seconds(11);
  core.heartbeat(survivor, later);
  const auto dead = core.expire(later);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], doomed);
  EXPECT_EQ(core.stats().workers_dead, 1u);
  EXPECT_EQ(core.stats().leases_requeued, 1u);
  EXPECT_EQ(core.live_workers(), 1u);

  // The requeued range beats fresh work to the next grant, under a new id.
  const auto regrant = core.grant(survivor, later);
  ASSERT_TRUE(regrant.has_value());
  EXPECT_EQ(regrant->range, lease->range);
  EXPECT_NE(regrant->id, lease->id);
}

TEST(CoordinatorCore, ExpiryIsDrivenOnlyByTheDeadline) {
  CoordinatorCore core(1, 4, options(4, 10));
  const int worker = core.connect(t0());
  EXPECT_TRUE(core.expire(t0() + std::chrono::seconds(9)).empty());
  core.heartbeat(worker, t0() + std::chrono::seconds(9));
  // The heartbeat reset the clock: still alive well past the original t0
  // deadline, dead once silence exceeds it again.
  EXPECT_TRUE(core.expire(t0() + std::chrono::seconds(18)).empty());
  EXPECT_EQ(core.expire(t0() + std::chrono::seconds(20)).size(), 1u);
}

TEST(CoordinatorCore, DoubleCompletionOfAReassignedLeaseCommitsOnce) {
  CoordinatorCore core(1, 4, options(4, 10));
  const int slow = core.connect(t0());
  const int fast = core.connect(t0());
  const auto original = core.grant(slow, t0());
  ASSERT_TRUE(original.has_value());

  // slow goes silent; its lease is reassigned to fast, who completes it.
  const auto later = t0() + std::chrono::seconds(11);
  core.heartbeat(fast, later);
  ASSERT_EQ(core.expire(later).size(), 1u);
  const auto replacement = core.grant(fast, later);
  ASSERT_TRUE(replacement.has_value());
  EXPECT_EQ(core.complete(fast, replacement->id, later), 4);
  EXPECT_TRUE(core.done());

  // slow was only silent, not gone: its late completion for the original
  // lease id must be harmless — zero fresh commits, all counted duplicate.
  EXPECT_EQ(core.complete(slow, original->id, later + std::chrono::seconds(1)), 0);
  EXPECT_EQ(core.committed(), 4u);
  EXPECT_TRUE(core.done());
  EXPECT_EQ(core.stats().duplicate_trials, 4u);
  EXPECT_EQ(core.stats().late_completions, 1u);
}

TEST(CoordinatorCore, LateCompletionBeforeTheReplacementCommitsAndShrinksTheRegrant) {
  CoordinatorCore core(1, 8, options(8, 10));
  const int slow = core.connect(t0());
  const int fast = core.connect(t0());
  const auto original = core.grant(slow, t0());
  ASSERT_TRUE(original.has_value());

  // The lease expires, but slow's done arrives BEFORE anyone re-executes:
  // its records are on disk, so the late completion commits all 8 slots.
  const auto later = t0() + std::chrono::seconds(11);
  core.heartbeat(fast, later);
  ASSERT_EQ(core.expire(later).size(), 1u);
  EXPECT_EQ(core.complete(slow, original->id, later), 8);
  EXPECT_TRUE(core.done());

  // The requeued range is now fully committed; fast gets nothing.
  EXPECT_FALSE(core.grant(fast, later).has_value());
}

TEST(CoordinatorCore, DisconnectRequeuesOutstandingLeases) {
  CoordinatorCore core(1, 8, options(4, 10));
  const int leaver = core.connect(t0());
  const auto lease = core.grant(leaver, t0());
  ASSERT_TRUE(lease.has_value());
  core.disconnect(leaver);
  EXPECT_EQ(core.stats().leases_requeued, 1u);
  EXPECT_EQ(core.live_workers(), 0u);

  const int next = core.connect(t0());
  const auto regrant = core.grant(next, t0());
  ASSERT_TRUE(regrant.has_value());
  EXPECT_EQ(regrant->range, lease->range);
}

TEST(CoordinatorCore, PrecommitShrinksTheGridLikeResume) {
  CoordinatorCore core(2, 4, options(10));
  // Point 0 fully recorded by an earlier run; point 1 half recorded.
  for (int t = 0; t < 4; ++t) core.precommit(0, t);
  core.precommit(1, 0);
  core.precommit(1, 1);
  core.precommit(1, 1);   // idempotent
  core.precommit(9, 0);   // out of grid: ignored
  core.precommit(1, 99);  // out of grid: ignored
  EXPECT_EQ(core.committed(), 6u);

  const int worker = core.connect(t0());
  const auto lease = core.grant(worker, t0());
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->range.point, 1u);
  EXPECT_EQ(lease->range.begin, 2);
  EXPECT_EQ(lease->range.end, 4);
  EXPECT_EQ(core.complete(worker, lease->id, t0()), 2);
  EXPECT_TRUE(core.done());
}

TEST(CoordinatorCore, EveryTrialCommitsExactlyOnceUnderChurn) {
  // Random-ish churn: two workers alternate, one repeatedly dies. However
  // leases bounce around, the committed count must hit the grid size with
  // every slot covered and none counted twice.
  CoordinatorCore core(3, 10, options(3, 10));
  auto now = t0();
  int live = core.connect(now);
  std::uint64_t round = 0;
  while (!core.done()) {
    ASSERT_LT(round++, 1000u) << "churn failed to converge";
    const auto lease = core.grant(live, now);
    if (!lease) {
      now += std::chrono::seconds(11);
      const auto dead = core.expire(now);
      if (!dead.empty()) live = core.connect(now);
      continue;
    }
    if (round % 3 == 0) {
      // This worker dies holding the lease; a fresh one replaces it.
      now += std::chrono::seconds(11);
      EXPECT_FALSE(core.expire(now).empty());
      live = core.connect(now);
    } else {
      core.complete(live, lease->id, now);
    }
  }
  EXPECT_EQ(core.committed(), 30u);
  EXPECT_EQ(core.total(), 30u);
  EXPECT_EQ(core.stats().duplicate_trials, 0u);  // nobody double-executed
}

TEST(CoordinatorCore, UnknownIdsAreIgnored) {
  CoordinatorCore core(1, 4, options(4));
  const int worker = core.connect(t0());
  EXPECT_EQ(core.complete(worker, 999, t0()), 0);  // never granted
  core.disconnect(12345);                          // unknown worker: no-op
  core.heartbeat(777, t0());                       // unknown worker: no-op
  EXPECT_EQ(core.committed(), 0u);
  const auto lease = core.grant(worker, t0());
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->range.trials(), 4);
}

TEST(CoordinatorCore, EmptyGridIsBornDone) {
  CoordinatorCore core(0, 10, options(4));
  EXPECT_TRUE(core.done());
  const int worker = core.connect(t0());
  EXPECT_FALSE(core.grant(worker, t0()).has_value());
}

}  // namespace
