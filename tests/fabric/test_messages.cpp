// The netcons-fabric-v1 wire vocabulary: every message type round-trips
// through encode/decode, schema mismatches fail loudly, and the
// incremental FrameBuffer reassembles frames from arbitrary byte slices
// (the coordinator feeds it whatever read() returned).
#include "fabric/frame.hpp"
#include "fabric/messages.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace {

using netcons::fabric::FrameBuffer;
using netcons::fabric::Message;

TEST(FabricMessages, HelloRoundTrips) {
  const std::string header = R"({"schema": "netcons-trials-v2", "seed": 7})";
  const Message decoded = Message::decode(Message::hello(header, 8).encode());
  EXPECT_EQ(decoded.type, Message::Type::kHello);
  EXPECT_EQ(decoded.text, header);  // verbatim, escaping included
  EXPECT_EQ(decoded.threads, 8);
}

TEST(FabricMessages, GrantAndDoneRoundTrip) {
  const Message grant = Message::decode(Message::grant(42, 3, 16, 32).encode());
  EXPECT_EQ(grant.type, Message::Type::kGrant);
  EXPECT_EQ(grant.lease, 42u);
  EXPECT_EQ(grant.point, 3u);
  EXPECT_EQ(grant.begin, 16);
  EXPECT_EQ(grant.end, 32);

  const Message done = Message::decode(Message::done(42, 16).encode());
  EXPECT_EQ(done.type, Message::Type::kDone);
  EXPECT_EQ(done.lease, 42u);
  EXPECT_EQ(done.executed, 16u);
}

TEST(FabricMessages, WelcomeWaitDrainErrorRoundTrip) {
  const Message welcome = Message::decode(Message::welcome(2, 1.5, 10.0).encode());
  EXPECT_EQ(welcome.type, Message::Type::kWelcome);
  EXPECT_EQ(welcome.worker, 2);
  EXPECT_DOUBLE_EQ(welcome.period_s, 1.5);
  EXPECT_DOUBLE_EQ(welcome.deadline_s, 10.0);

  const Message wait = Message::decode(Message::wait(250).encode());
  EXPECT_EQ(wait.type, Message::Type::kWait);
  EXPECT_EQ(wait.retry_ms, 250);

  EXPECT_EQ(Message::decode(Message::drain().encode()).type, Message::Type::kDrain);
  EXPECT_EQ(Message::decode(Message::request().encode()).type, Message::Type::kRequest);

  const Message error = Message::decode(Message::error("spec mismatch: trials").encode());
  EXPECT_EQ(error.type, Message::Type::kError);
  EXPECT_EQ(error.text, "spec mismatch: trials");
}

TEST(FabricMessages, HeartbeatCarriesTheLineVerbatim) {
  const std::string line =
      R"({"schema": "netcons-heartbeat-v1", "type": "heartbeat", "seq": 3})";
  const Message decoded = Message::decode(Message::heartbeat(line).encode());
  EXPECT_EQ(decoded.type, Message::Type::kHeartbeat);
  EXPECT_EQ(decoded.text, line);
}

TEST(FabricMessages, SchemaMismatchNamesBothVersions) {
  try {
    (void)Message::decode(R"({"fabric": "netcons-fabric-v99", "type": "request"})");
    FAIL() << "expected a schema-mismatch throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("netcons-fabric-v99"), std::string::npos) << what;
    EXPECT_NE(what.find("netcons-fabric-v1"), std::string::npos) << what;
  }
}

TEST(FabricMessages, MalformedPayloadsThrow) {
  EXPECT_THROW((void)Message::decode("not json"), std::runtime_error);
  EXPECT_THROW((void)Message::decode(R"({"fabric": "netcons-fabric-v1"})"),
               std::runtime_error);  // no type
  EXPECT_THROW(
      (void)Message::decode(R"({"fabric": "netcons-fabric-v1", "type": "launch"})"),
      std::runtime_error);  // unknown type
  EXPECT_THROW(
      (void)Message::decode(R"({"fabric": "netcons-fabric-v1", "type": "grant"})"),
      std::runtime_error);  // grant without its fields
}

/// 4-byte big-endian length prefix + payload, as write_frame produces.
std::string framed(const std::string& payload) {
  std::string out;
  out.push_back(static_cast<char>((payload.size() >> 24) & 0xff));
  out.push_back(static_cast<char>((payload.size() >> 16) & 0xff));
  out.push_back(static_cast<char>((payload.size() >> 8) & 0xff));
  out.push_back(static_cast<char>(payload.size() & 0xff));
  return out + payload;
}

TEST(FrameBuffer, ReassemblesFramesFromSingleByteSlices) {
  const std::string stream = framed("alpha") + framed("") + framed("beta");
  FrameBuffer buffer;
  std::vector<std::string> frames;
  for (const char byte : stream) {
    buffer.append(&byte, 1);
    while (auto frame = buffer.pop()) frames.push_back(*frame);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "alpha");
  EXPECT_EQ(frames[1], "");
  EXPECT_EQ(frames[2], "beta");
}

TEST(FrameBuffer, HoldsAPartialFrameUntilTheRestArrives) {
  const std::string stream = framed("payload");
  FrameBuffer buffer;
  buffer.append(stream.data(), 6);  // prefix + 2 of 7 payload bytes
  EXPECT_FALSE(buffer.pop().has_value());
  buffer.append(stream.data() + 6, stream.size() - 6);
  const auto frame = buffer.pop();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "payload");
  EXPECT_FALSE(buffer.pop().has_value());
}

TEST(FrameBuffer, OversizedPrefixIsCorruptionNotAllocation) {
  FrameBuffer buffer;
  const char huge[4] = {0x7f, 0x7f, 0x7f, 0x7f};  // ~2 GiB claimed payload
  buffer.append(huge, 4);
  EXPECT_THROW((void)buffer.pop(), std::runtime_error);
}

}  // namespace
