#include "analysis/experiment.hpp"

#include "protocols/protocols.hpp"

#include <gtest/gtest.h>

namespace netcons::analysis {
namespace {

TEST(Experiment, RunTrialReportsConvergence) {
  const auto spec = protocols::global_star();
  const TrialResult result = run_trial(spec, 10, 42);
  EXPECT_TRUE(result.stabilized);
  EXPECT_TRUE(result.target_ok);
  EXPECT_GT(result.convergence_step, 0u);
  EXPECT_GE(result.steps_executed, result.convergence_step);
}

TEST(Experiment, MeasureAggregatesTrials) {
  const auto spec = protocols::cycle_cover();
  const MeasurePoint point = measure(spec, 12, 8, 7);
  EXPECT_EQ(point.n, 12);
  EXPECT_EQ(point.trials, 8);
  EXPECT_EQ(point.failures, 0);
  EXPECT_EQ(point.convergence_steps.count(), 8u);
  EXPECT_GT(point.convergence_steps.mean(), 0.0);
}

TEST(Experiment, SweepAndExponentFit) {
  const auto spec = protocols::cycle_cover();
  const auto points = sweep(spec, {12, 20, 32, 48}, 8, 99);
  ASSERT_EQ(points.size(), 4u);
  const LinearFit fit = fit_exponent(points);
  EXPECT_NEAR(fit.slope, 2.0, 0.4);  // Theta(n^2)
}

TEST(Experiment, MeasureProcessMatchesTheory) {
  const auto spec = one_way_epidemic();
  const MeasurePoint point = measure_process(spec, 20, 60, 5);
  const double expected = spec.expected_steps(20);
  EXPECT_NEAR(point.convergence_steps.mean(), expected,
              6.0 * point.convergence_steps.sem() + 0.05 * expected);
}

TEST(Experiment, SweepProcessProducesOnePointPerN) {
  const auto spec = node_cover();
  const auto points = sweep_process(spec, {8, 16, 32}, 5, 3);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].convergence_steps.mean(), points[2].convergence_steps.mean());
}

TEST(Experiment, TrialsAreReproducible) {
  const auto spec = protocols::global_star();
  const TrialResult a = run_trial(spec, 9, 123);
  const TrialResult b = run_trial(spec, 9, 123);
  EXPECT_EQ(a.convergence_step, b.convergence_step);
  EXPECT_EQ(a.steps_executed, b.steps_executed);
}

TEST(Experiment, FaultedTrialAndMeasureReportRecovery) {
  const auto spec = protocols::global_star();
  const auto plan = faults::parse_fault_plan("edge-burst:f=0.5");

  const TrialResult trial = run_trial(spec, 16, 7, plan);
  EXPECT_TRUE(trial.stabilized);
  EXPECT_EQ(trial.faults_injected, 1u);
  EXPECT_GT(trial.output_edges_deleted, 0u);
  EXPECT_EQ(trial.output_edges_repaired, trial.output_edges_deleted);  // star repairs

  const MeasurePoint point = measure(spec, 16, 12, 5, 0, plan);
  EXPECT_EQ(point.failures, 0);
  EXPECT_EQ(point.damaged, 0);
  EXPECT_EQ(point.recovery_steps.count(), 12u);
  EXPECT_GT(point.recovery_steps.mean(), 0.0);

  // Fault-free measure is unchanged by the new parameter's default.
  const MeasurePoint plain = measure(spec, 16, 12, 5);
  EXPECT_EQ(plain.recovery_steps.count(), 0u);
  EXPECT_EQ(plain.damaged, 0);
}

}  // namespace
}  // namespace netcons::analysis
