#include "analysis/distribution.hpp"

#include "campaign/campaign.hpp"
#include "campaign/registry.hpp"
#include "campaign/seeds.hpp"
#include "campaign/trial_record.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace netcons::analysis {
namespace {

/// Brute-force reference statistics over the raw sample vector — the
/// acceptance criterion cross-checks the streamed pipeline against these on
/// every input up to 4096 trials.
struct Reference {
  std::vector<std::uint64_t> sorted;

  explicit Reference(std::vector<std::uint64_t> samples) : sorted(std::move(samples)) {
    std::sort(sorted.begin(), sorted.end());
  }

  [[nodiscard]] double mean() const {
    double sum = 0.0;
    for (const std::uint64_t v : sorted) sum += static_cast<double>(v);
    return sum / static_cast<double>(sorted.size());
  }

  [[nodiscard]] double variance() const {
    const double mu = mean();
    double m2 = 0.0;
    for (const std::uint64_t v : sorted) {
      const double delta = static_cast<double>(v) - mu;
      m2 += delta * delta;
    }
    return m2 / static_cast<double>(sorted.size() - 1);
  }

  /// Linear-interpolated order statistic (the RunningStats convention).
  [[nodiscard]] double quantile(double p) const {
    const double position = p * static_cast<double>(sorted.size() - 1);
    const auto lower = static_cast<std::size_t>(position);
    const double fraction = position - static_cast<double>(lower);
    if (lower + 1 >= sorted.size()) return static_cast<double>(sorted.back());
    return static_cast<double>(sorted[lower]) * (1.0 - fraction) +
           static_cast<double>(sorted[lower + 1]) * fraction;
  }

  /// F(x) = #(samples <= x) for every distinct value, ascending.
  [[nodiscard]] std::vector<EcdfPoint> ecdf() const {
    std::vector<EcdfPoint> out;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (!out.empty() && out.back().value == sorted[i]) {
        ++out.back().cumulative;
      } else {
        out.push_back({sorted[i], out.empty() ? 1 : out.back().cumulative + 1, 0.0});
      }
      out.back().fraction =
          static_cast<double>(out.back().cumulative) / static_cast<double>(sorted.size());
    }
    return out;
  }

  /// Histogram by direct per-sample bin assignment.
  [[nodiscard]] std::vector<std::uint64_t> histogram(double lo, double width,
                                                     std::size_t bins) const {
    std::vector<std::uint64_t> counts(bins, 0);
    for (const std::uint64_t v : sorted) {
      auto bin = static_cast<std::size_t>((static_cast<double>(v) - lo) / width);
      if (bin >= bins) bin = bins - 1;
      ++counts[bin];
    }
    return counts;
  }
};

std::vector<std::uint64_t> random_samples(std::size_t count, std::uint64_t seed,
                                          std::uint64_t range) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> samples(count);
  for (auto& sample : samples) sample = rng() % range;
  return samples;
}

TEST(ValueDistribution, MatchesBruteForceOnRandomMultisets) {
  for (const std::size_t count : {1u, 2u, 7u, 100u, 4096u}) {
    const std::vector<std::uint64_t> samples = random_samples(count, 42 + count, 500);
    ValueDistribution dist;
    for (const std::uint64_t sample : samples) dist.add(sample);
    const Reference ref(samples);

    ASSERT_EQ(dist.count(), count);
    EXPECT_EQ(dist.min(), ref.sorted.front());
    EXPECT_EQ(dist.max(), ref.sorted.back());
    EXPECT_NEAR(dist.mean(), ref.mean(), 1e-9 * std::max(1.0, ref.mean()));
    if (count >= 2) {
      EXPECT_NEAR(dist.variance(), ref.variance(), 1e-6);
    }
    for (const double p : {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      EXPECT_NEAR(dist.quantile(p), ref.quantile(p), 1e-9) << "count=" << count << " p=" << p;
    }
  }
}

TEST(ValueDistribution, EcdfMatchesBruteForce) {
  const std::vector<std::uint64_t> samples = random_samples(4096, 7, 300);
  ValueDistribution dist;
  for (const std::uint64_t sample : samples) dist.add(sample);
  const std::vector<EcdfPoint> expected = Reference(samples).ecdf();
  const std::vector<EcdfPoint> actual = ecdf(dist);

  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].value, expected[i].value);
    EXPECT_EQ(actual[i].cumulative, expected[i].cumulative);
    EXPECT_DOUBLE_EQ(actual[i].fraction, expected[i].fraction);
  }
  EXPECT_EQ(actual.back().cumulative, dist.count());
  EXPECT_DOUBLE_EQ(actual.back().fraction, 1.0);
}

TEST(ValueDistribution, StatisticsAreInsertionOrderIndependent) {
  std::vector<std::uint64_t> samples = random_samples(2048, 11, 1000);
  ValueDistribution forward;
  for (const std::uint64_t sample : samples) forward.add(sample);
  std::reverse(samples.begin(), samples.end());
  ValueDistribution reverse;
  for (const std::uint64_t sample : samples) reverse.add(sample);

  // Bit-identical, not merely close: the byte-stable report contract.
  EXPECT_EQ(forward.mean(), reverse.mean());
  EXPECT_EQ(forward.variance(), reverse.variance());
  EXPECT_EQ(forward.quantile(0.9), reverse.quantile(0.9));
  const Histogram ha = histogram(forward);
  const Histogram hb = histogram(reverse);
  EXPECT_EQ(ha.lo, hb.lo);
  EXPECT_EQ(ha.width, hb.width);
  EXPECT_EQ(ha.counts, hb.counts);
}

TEST(Histogram, BinAssignmentMatchesBruteForceAndEdgesAreDeterministic) {
  const std::vector<std::uint64_t> samples = random_samples(4096, 3, 977);
  ValueDistribution dist;
  for (const std::uint64_t sample : samples) dist.add(sample);
  const Reference ref(samples);

  for (const int bins : {1, 2, 7, 32, 256}) {
    const Histogram h = histogram(dist, bins);
    ASSERT_EQ(h.bins(), static_cast<std::size_t>(bins));
    // Edges are the exact affine grid over [min, max]: lo + i * width.
    EXPECT_EQ(h.lo, static_cast<double>(dist.min()));
    EXPECT_EQ(h.width,
              static_cast<double>(dist.max() - dist.min()) / static_cast<double>(bins));
    for (std::size_t i = 0; i <= h.bins(); ++i) {
      EXPECT_EQ(h.edge(i), h.lo + h.width * static_cast<double>(i));
    }
    EXPECT_EQ(h.counts, ref.histogram(h.lo, h.width, h.bins()));
    std::uint64_t total = 0;
    for (const std::uint64_t c : h.counts) total += c;
    EXPECT_EQ(total, dist.count());  // Every sample lands in exactly one bin.
  }
}

TEST(Histogram, DegenerateShapes) {
  ValueDistribution empty;
  EXPECT_EQ(freedman_diaconis_bins(empty), 0);
  EXPECT_TRUE(histogram(empty).counts.empty());

  ValueDistribution single;
  single.add(77, 123);
  EXPECT_EQ(freedman_diaconis_bins(single), 1);
  const Histogram h = histogram(single);
  ASSERT_EQ(h.bins(), 1u);
  EXPECT_EQ(h.counts[0], 123u);
  EXPECT_EQ(h.lo, 77.0);
  EXPECT_EQ(h.width, 0.0);
}

TEST(Histogram, FreedmanDiaconisFallsBackAndCaps) {
  // IQR == 0 but a nonzero span: Sturges fallback, floor(log2 n) + 1.
  ValueDistribution spiked;
  spiked.add(10, 1000);
  spiked.add(20, 1);
  EXPECT_EQ(freedman_diaconis_bins(spiked), static_cast<int>(std::floor(std::log2(1001))) + 1);

  // A huge span against a tiny IQR: the requested width would imply
  // millions of bins; the cap bounds the document size.
  ValueDistribution heavy_tail;
  for (std::uint64_t v = 0; v < 128; ++v) heavy_tail.add(v, 8);
  heavy_tail.add(1u << 30, 1);
  EXPECT_EQ(freedman_diaconis_bins(heavy_tail), kMaxHistogramBins);

  // The ordinary regime: 2 * IQR / cbrt(n) width over the span.
  const std::vector<std::uint64_t> samples = random_samples(1000, 5, 1000);
  ValueDistribution dist;
  for (const std::uint64_t sample : samples) dist.add(sample);
  const double iqr = dist.quantile(0.75) - dist.quantile(0.25);
  const double span = static_cast<double>(dist.max() - dist.min());
  const double expected = std::ceil(span / (2.0 * iqr / std::cbrt(1000.0)));
  EXPECT_EQ(freedman_diaconis_bins(dist), static_cast<int>(expected));
}

TEST(KsDistance, KnownValuesAndProperties) {
  ValueDistribution a;
  ValueDistribution b;
  EXPECT_EQ(ks_distance(a, b), 0.0);  // Empty sides compare as 0 by contract.

  a.add(0);
  b.add(1);
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);  // Disjoint supports.

  // A = {0, 1}, B = {1}: F_A(0) = 1/2, F_B(0) = 0 -> sup = 1/2.
  ValueDistribution c;
  c.add(0);
  c.add(1);
  ValueDistribution d;
  d.add(1);
  EXPECT_DOUBLE_EQ(ks_distance(c, d), 0.5);
  EXPECT_DOUBLE_EQ(ks_distance(d, c), 0.5);  // Symmetric.
  EXPECT_DOUBLE_EQ(ks_distance(c, c), 0.0);  // Identical.

  // Same distribution at different sample sizes: KS(F, F) stays 0.
  ValueDistribution scaled;
  scaled.add(0, 3);
  scaled.add(1, 3);
  EXPECT_DOUBLE_EQ(ks_distance(c, scaled), 0.0);

  // Brute-force reference on random data: max ECDF gap over the support.
  const std::vector<std::uint64_t> sa = random_samples(512, 21, 64);
  const std::vector<std::uint64_t> sb = random_samples(768, 22, 64);
  ValueDistribution da;
  ValueDistribution db;
  for (const std::uint64_t v : sa) da.add(v);
  for (const std::uint64_t v : sb) db.add(v);
  double expected = 0.0;
  for (std::uint64_t x = 0; x < 64; ++x) {
    const auto below = [x](const std::vector<std::uint64_t>& s) {
      return static_cast<double>(std::count_if(s.begin(), s.end(),
                                               [x](std::uint64_t v) { return v <= x; })) /
             static_cast<double>(s.size());
    };
    expected = std::max(expected, std::abs(below(sa) - below(sb)));
  }
  EXPECT_DOUBLE_EQ(ks_distance(da, db), expected);
}

TEST(Metrics, NamesRoundTripAndInclusionRulesMirrorTheReduction) {
  for (const Metric metric : all_metrics()) {
    EXPECT_EQ(metric_from_name(metric_name(metric)), metric);
  }
  EXPECT_FALSE(metric_from_name("no_such_metric").has_value());

  campaign::TrialOutcome success;
  success.success = true;
  success.value = 11;
  success.steps_executed = 22;
  success.recovery_steps = 33;
  success.edges_residual = 44;
  campaign::TrialOutcome failure = success;
  failure.success = false;

  // Fault-free points: convergence only on success, steps always,
  // recovery metrics never.
  EXPECT_EQ(metric_sample(Metric::kConvergenceSteps, success, false), 11u);
  EXPECT_EQ(metric_sample(Metric::kConvergenceSteps, failure, false), std::nullopt);
  EXPECT_EQ(metric_sample(Metric::kStepsExecuted, failure, false), 22u);
  EXPECT_EQ(metric_sample(Metric::kRecoverySteps, success, false), std::nullopt);
  EXPECT_EQ(metric_sample(Metric::kEdgesResidual, success, false), std::nullopt);

  // Faulted points: recovery on success, residual damage on every trial.
  EXPECT_EQ(metric_sample(Metric::kRecoverySteps, success, true), 33u);
  EXPECT_EQ(metric_sample(Metric::kRecoverySteps, failure, true), std::nullopt);
  EXPECT_EQ(metric_sample(Metric::kEdgesResidual, failure, true), 44u);
}

campaign::CampaignHeader two_point_header(int trials) {
  campaign::CampaignHeader header;
  header.base_seed = 9;
  header.trials = trials;
  for (int p = 0; p < 2; ++p) {
    campaign::GridPoint point;
    point.unit = "synthetic";
    point.n = 8 * (p + 1);
    point.faulted = (p == 1);
    point.faults = (p == 1) ? "crash:k=1" : "none";
    point.seed = campaign::point_seed(header.base_seed, static_cast<std::uint64_t>(p));
    header.points.push_back(point);
  }
  return header;
}

campaign::TrialRecord make_record(std::size_t point, int trial, std::uint64_t value) {
  campaign::TrialRecord record;
  record.point = point;
  record.trial = trial;
  record.outcome.success = true;
  record.outcome.value = value;
  record.outcome.steps_executed = value + 1;
  record.outcome.recovery_steps = value / 2;
  record.outcome.edges_residual = value % 3;
  return record;
}

TEST(RecordDistributionBuilder, LastWinsAndArrivalOrderIndependence) {
  const campaign::CampaignHeader header = two_point_header(3);

  RecordDistributionBuilder forward(header);
  for (const std::size_t p : {0u, 1u}) {
    for (int t = 0; t < 3; ++t) forward.add(make_record(p, t, 10 * p + t));
  }
  EXPECT_EQ(forward.filled(), 6u);
  EXPECT_EQ(forward.missing(), 0u);
  EXPECT_EQ(forward.duplicates(), 0u);

  // Same record set in reverse arrival order, with a stale duplicate that
  // a fresher record then supersedes.
  RecordDistributionBuilder shuffled(header);
  shuffled.add(make_record(1, 2, 999));  // Stale: will be overwritten.
  for (int t = 2; t >= 0; --t) {
    for (const std::size_t p : {1u, 0u}) shuffled.add(make_record(p, t, 10 * p + t));
  }
  EXPECT_EQ(shuffled.duplicates(), 1u);
  EXPECT_EQ(shuffled.filled(), 6u);

  const std::vector<PointDistributions> a = forward.build();
  const std::vector<PointDistributions> b = shuffled.build();
  ASSERT_EQ(a.size(), 2u);
  for (std::size_t p = 0; p < 2; ++p) {
    for (const Metric metric : all_metrics()) {
      const ValueDistribution& da = a[p].metric(metric);
      const ValueDistribution& db = b[p].metric(metric);
      EXPECT_EQ(da.counts(), db.counts()) << "point " << p;
    }
  }
  // The faulted point exposes recovery metrics; the fault-free one never.
  EXPECT_EQ(a[0].metric(Metric::kRecoverySteps).count(), 0u);
  EXPECT_EQ(a[1].metric(Metric::kRecoverySteps).count(), 3u);
}

TEST(RecordDistributionBuilder, TracksMissingSlotsAndRejectsOutOfGrid) {
  const campaign::CampaignHeader header = two_point_header(4);
  RecordDistributionBuilder builder(header);
  builder.add(make_record(0, 0, 1));
  builder.add(make_record(1, 3, 2));
  EXPECT_EQ(builder.filled(), 2u);
  EXPECT_EQ(builder.missing(), 6u);
  const auto missing = builder.first_missing();
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->first, 0u);
  EXPECT_EQ(missing->second, 1);

  EXPECT_THROW(builder.add(make_record(2, 0, 1)), std::out_of_range);
  EXPECT_THROW(builder.add(make_record(0, 4, 1)), std::out_of_range);
}

TEST(RecordDistributionBuilder, AgreesWithEngineAggregatesOnALiveCampaign) {
  campaign::CampaignSpec spec;
  spec.units.push_back(
      campaign::Unit::protocol("cycle-cover", *campaign::make_protocol("cycle-cover")));
  spec.ns = {8, 12};
  spec.trials = 25;
  spec.base_seed = 31;

  std::vector<campaign::TrialRecord> records;
  campaign::RunOptions options;
  options.threads = 2;
  options.on_trial = [&records](std::size_t point, int trial, std::uint64_t seed,
                                const campaign::TrialOutcome& outcome) {
    records.push_back(campaign::TrialRecord{point, trial, seed, outcome});
  };
  const campaign::CampaignResult live = campaign::run(spec, options);
  ASSERT_TRUE(live.complete);

  RecordDistributionBuilder builder(campaign::CampaignHeader::describe(spec));
  for (const campaign::TrialRecord& record : records) builder.add(record);
  const std::vector<PointDistributions> dists = builder.build();

  ASSERT_EQ(dists.size(), live.points.size());
  for (std::size_t p = 0; p < dists.size(); ++p) {
    const ValueDistribution& convergence = dists[p].metric(Metric::kConvergenceSteps);
    const RunningStats& engine = live.points[p].convergence_steps;
    EXPECT_EQ(convergence.count(), engine.count());
    EXPECT_NEAR(convergence.mean(), engine.mean(), 1e-9 * std::max(1.0, engine.mean()));
    EXPECT_EQ(static_cast<double>(convergence.min()), engine.min());
    EXPECT_EQ(static_cast<double>(convergence.max()), engine.max());
    EXPECT_NEAR(convergence.quantile(0.5), engine.median(), 1e-9);
  }
}

}  // namespace
}  // namespace netcons::analysis
