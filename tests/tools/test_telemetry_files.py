#!/usr/bin/env python3
"""End-to-end telemetry file contract, registered with ctest.

Drives the real binaries (paths passed as argv: netcons_campaign,
netcons_run, netcons_top) and checks the observability guarantees CI
relies on:

  * the campaign summary JSON and trial-record CSV are byte-identical
    with and without --telemetry/--progress (telemetry must never perturb
    results);
  * metrics.json parses, carries the metrics schema, and contains the
    campaign.* and engine.* metrics;
  * trace.json parses as Chrome trace-event JSON (the form Perfetto
    loads) with at least one complete span;
  * heartbeat.jsonl is schema-conformant JSONL ending in a "final" point
    whose trials_done matches the campaign size;
  * netcons_top renders the heartbeat file and exits 0;
  * the campaign always reports a final trials/s line on stderr, with or
    without telemetry.

Stdlib only.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

# Absolute paths: the tools run from per-test working directories.
CAMPAIGN, RUN, TOP = (str(pathlib.Path(p).resolve()) for p in sys.argv[1:4])

CAMPAIGN_ARGS = ["--protocols", "cycle-cover,global-star", "--ns", "16,32",
                 "--trials", "10", "--engine", "census", "--seed", "7"]


def run_tool(args, cwd):
    return subprocess.run(args, cwd=cwd, capture_output=True, text=True, timeout=240)


class TelemetryFilesTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.dir = tempfile.TemporaryDirectory(prefix="netcons_telemetry_")
        cls.root = pathlib.Path(cls.dir.name)

        plain = cls.root / "plain"
        instrumented = cls.root / "instrumented"
        plain.mkdir()
        instrumented.mkdir()
        cls.telemetry_dir = instrumented / "telemetry"

        cls.plain_result = run_tool(
            [CAMPAIGN, *CAMPAIGN_ARGS, "--json", "summary.json", "--csv", "records.csv"],
            plain)
        cls.instrumented_result = run_tool(
            [CAMPAIGN, *CAMPAIGN_ARGS, "--json", "summary.json", "--csv", "records.csv",
             "--telemetry", str(cls.telemetry_dir), "--progress", "1"],
            instrumented)
        cls.plain_dir = plain
        cls.instrumented_dir = instrumented

    @classmethod
    def tearDownClass(cls):
        cls.dir.cleanup()

    def setUp(self):
        self.assertEqual(self.plain_result.returncode, 0, self.plain_result.stderr)
        self.assertEqual(self.instrumented_result.returncode, 0,
                         self.instrumented_result.stderr)

    def test_summaries_are_byte_identical_with_and_without_telemetry(self):
        for name in ("summary.json", "records.csv"):
            plain = (self.plain_dir / name).read_bytes()
            instrumented = (self.instrumented_dir / name).read_bytes()
            self.assertEqual(plain, instrumented,
                             f"{name} differs when telemetry is enabled")

    def test_metrics_json_parses_and_carries_engine_and_campaign_metrics(self):
        document = json.loads((self.telemetry_dir / "metrics.json").read_text())
        self.assertEqual(document["schema"], "netcons-metrics-v1")
        counters = document["counters"]
        self.assertGreater(counters["engine.steps"], 0)
        self.assertGreater(counters["engine.effective_steps"], 0)
        self.assertGreater(counters["census.effective_samples"], 0)
        self.assertEqual(counters["campaign.trials_done"], 40)  # 2 protocols x 2 ns x 10
        gauges = document["gauges"]
        self.assertEqual(gauges["campaign.trials_total"], 40)
        histogram = document["histograms"]["census.bucket_occupancy"]
        self.assertEqual(len(histogram["counts"]), len(histogram["bounds"]) + 1)
        self.assertEqual(histogram["count"], sum(histogram["counts"]))

    def test_trace_json_is_chrome_trace_event_format(self):
        document = json.loads((self.telemetry_dir / "trace.json").read_text())
        events = document["traceEvents"]
        self.assertTrue(events, "trace has no events")
        phases = {event["ph"] for event in events}
        self.assertIn("X", phases)  # at least one complete span
        for event in events:
            self.assertEqual(event["pid"], 1)
            self.assertIn("tid", event)
            if event["ph"] == "X":
                self.assertGreaterEqual(event["dur"], 0.0)

    def test_heartbeat_jsonl_is_schema_conformant_and_ends_final(self):
        lines = [line for line in
                 (self.telemetry_dir / "heartbeat.jsonl").read_text().splitlines() if line]
        self.assertGreaterEqual(len(lines), 2)  # at least the begin and final points
        points = [json.loads(line) for line in lines]
        for seq, point in enumerate(points):
            self.assertEqual(point["schema"], "netcons-heartbeat-v1")
            self.assertEqual(point["seq"], seq)
            self.assertEqual(point["trials_total"], 40)
            self.assertEqual(point["queue_depth"],
                             point["trials_total"] - point["trials_done"])
            self.assertEqual(len(point["utilization"]), point["workers"])
        self.assertEqual([p for p in points if p["type"] == "final"], [points[-1]])
        self.assertEqual(points[-1]["trials_done"], 40)

    def test_progress_lines_reach_stderr(self):
        self.assertIn("[campaign]", self.instrumented_result.stderr)
        self.assertIn(", done", self.instrumented_result.stderr)

    def test_final_rate_line_prints_with_and_without_telemetry(self):
        for result in (self.plain_result, self.instrumented_result):
            self.assertRegex(result.stderr,
                             r"netcons_campaign: \d+ trials in \d+\.\d+ s \([\d.]+ trials/s\)")

    def test_netcons_top_renders_the_heartbeat_file(self):
        result = run_tool([TOP, str(self.telemetry_dir / "heartbeat.jsonl")], self.root)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("done", result.stdout)
        result_dir = run_tool([TOP, str(self.telemetry_dir)], self.root)  # dir resolves too
        self.assertEqual(result_dir.returncode, 0, result_dir.stderr)

    def test_netcons_run_writes_telemetry(self):
        out = self.root / "run_telemetry"
        result = run_tool([RUN, "--protocol", "global-star", "--n", "24", "--seed", "3",
                           "--telemetry", str(out)], self.root)
        self.assertEqual(result.returncode, 0, result.stderr)
        metrics = json.loads((out / "metrics.json").read_text())
        self.assertGreater(metrics["counters"]["engine.steps"], 0)
        trace = json.loads((out / "trace.json").read_text())
        names = {event.get("name") for event in trace["traceEvents"]}
        self.assertIn("run_until_stable", names)


if __name__ == "__main__":
    sys.argv = sys.argv[:1]  # unittest.main must not see the binary paths
    unittest.main()
