#!/usr/bin/env python3
"""Help-vs-docs drift gate.

Every tool's --help and the flag tables in docs/OPERATIONS.md must agree
-- bidirectionally. A flag added to a tool but not documented fails; a
documented flag the tool no longer accepts fails too. --help itself is
exempt (tables do not list it).

Extraction is structural on both sides, so prose mentioning a flag never
confuses the comparison:

  * from --help output: only lines inside a "...flags:" (C++) or
    "options:" (argparse) section whose first token starts with --;
    every --flag token on such a line counts (so "--k K  --c C  --d D"
    yields all three);
  * from OPERATIONS.md: only the first cell of rows in the tool's own
    "### `tool` flags" table. netcons_campaign / netcons_coord /
    netcons_worker additionally own the shared "### Campaign spec flags"
    table (one parser in the code, one table in the docs).

Usage: test_help_matches_docs.py REPO_ROOT NETCONS_RUN NETCONS_CAMPAIGN \
           NETCONS_MERGE NETCONS_REPORT NETCONS_TOP NETCONS_COORD \
           NETCONS_WORKER NETCONS_SERVE

Exit status: 0 on agreement, 1 on drift (each mismatch printed).
Stdlib only -- CI runners need nothing installed.
"""

import pathlib
import re
import subprocess
import sys

FLAG = re.compile(r"--[a-z][a-z0-9-]*")
SECTION_END = re.compile(r"^#{1,3}\s")

# Tools that parse the shared campaign-spec flag set (campaign::spec_cli).
SPEC_TOOLS = {"netcons_campaign", "netcons_coord", "netcons_worker"}


def help_flags(command):
    """Flags a tool's --help advertises, from its flag-list lines only."""
    result = subprocess.run(command + ["--help"], capture_output=True, text=True)
    if result.returncode != 0:
        raise AssertionError(
            f"{command} --help exited {result.returncode}: {result.stderr}")
    flags = set()
    in_flags = False
    for line in result.stdout.splitlines():
        stripped = line.strip()
        if stripped.endswith("flags:") or stripped in ("options:",
                                                       "optional arguments:"):
            in_flags = True
            continue
        if in_flags and re.match(r"^\s+--", line):
            flags |= set(FLAG.findall(line))
    if not in_flags:
        raise AssertionError(f"{command}: no flags:/options: section in --help")
    flags.discard("--help")
    return flags


def docs_tables(operations_md):
    """{heading-name: set of flags} from every '### ... flags' table."""
    tables = {}
    current = None
    for line in operations_md.splitlines():
        heading = re.match(r"^### (.+?) flags\s*$", line)
        if heading:
            current = heading.group(1).strip().strip("`")
            tables[current] = set()
            continue
        if current is None:
            continue
        if SECTION_END.match(line):
            current = None
            continue
        if line.startswith("|"):
            # Split on unescaped pipes only: cells contain literal \|.
            first_cell = re.split(r"(?<!\\)\|", line)[1]
            tables[current] |= set(FLAG.findall(first_cell))
    return tables


def main():
    if len(sys.argv) != 10:
        print(__doc__, file=sys.stderr)
        return 2
    root = pathlib.Path(sys.argv[1])
    binaries = sys.argv[2:10]
    operations = (root / "docs" / "OPERATIONS.md").read_text(encoding="utf-8")
    tables = docs_tables(operations)
    spec_table = tables.get("Campaign spec", set())
    if not spec_table:
        print("docs/OPERATIONS.md: no 'Campaign spec flags' table",
              file=sys.stderr)
        return 1

    commands = {pathlib.Path(path).name: [path] for path in binaries}
    commands["orchestrate_shards.py"] = [
        sys.executable, str(root / "tools" / "orchestrate_shards.py")]
    commands["plot_report.py"] = [
        sys.executable, str(root / "tools" / "plot_report.py")]

    failures = []
    for tool, command in sorted(commands.items()):
        if tool not in tables:
            failures.append(f"{tool}: no '### `{tool}` flags' table in "
                            "docs/OPERATIONS.md")
            continue
        documented = set(tables[tool])
        if tool in SPEC_TOOLS:
            documented |= spec_table
        advertised = help_flags(command)
        for flag in sorted(advertised - documented):
            failures.append(f"{tool}: {flag} is in --help but missing from "
                            "docs/OPERATIONS.md")
        for flag in sorted(documented - advertised):
            failures.append(f"{tool}: {flag} is documented in "
                            "docs/OPERATIONS.md but absent from --help")

    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"help-vs-docs: {len(failures)} mismatch(es)", file=sys.stderr)
        return 1
    print(f"help-vs-docs: {len(commands)} tools agree with docs/OPERATIONS.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
