#!/usr/bin/env python3
"""Unit tests for tools/compare_bench.py, registered with ctest.

Exercised as a subprocess (the way CI calls it) so the exit-status contract
is what's under test: 0 within threshold, 1 on regression, 2 on a broken
current file, 3 on a missing or schema-mismatched baseline.

Stdlib only, like the script itself.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

SCRIPT = pathlib.Path(__file__).resolve().parents[2] / "tools" / "compare_bench.py"


def bench_doc(value):
    return {"benches": {"scaling": {"throughput": {"trials_per_second": value}}}}


def overhead_doc(throughput, overhead=None):
    document = {"benches": {"telemetry": {"throughput": {"on_trials_per_second": throughput}}}}
    if overhead is not None:
        document["benches"]["telemetry"]["overhead"] = {"telemetry_fraction": overhead}
    return document


def serve_doc(rps, mean_ms):
    return {"bench": "serve_throughput",
            "serve_throughput": {"cache_hit_rps": rps,
                                 "mean_request_ms": mean_ms}}


def scaling_doc(points):
    """points: {n: ns_per_effective} for a single census curve."""
    return {"bench": "engine_scaling",
            "scaling_curve": {"census_ns_per_effective":
                              {f"n_{n}": value for n, value in points.items()}}}


FLAT_CURVE = {256: 170.0, 1024: 160.0, 16384: 220.0, 65536: 290.0}


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory(prefix="netcons_compare_bench_")
        self.root = pathlib.Path(self.dir.name)

    def tearDown(self):
        self.dir.cleanup()

    def write(self, name, document):
        path = self.root / name
        if isinstance(document, str):
            path.write_text(document)
        else:
            path.write_text(json.dumps(document))
        return path

    def run_compare(self, baseline, current, *extra):
        return subprocess.run(
            [sys.executable, str(SCRIPT), str(baseline), str(current), *extra],
            capture_output=True, text=True)

    def test_within_threshold_passes(self):
        result = self.run_compare(self.write("base.json", bench_doc(100.0)),
                                  self.write("cur.json", bench_doc(90.0)))
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_regression_fails_with_status_1(self):
        result = self.run_compare(self.write("base.json", bench_doc(100.0)),
                                  self.write("cur.json", bench_doc(50.0)))
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)

    def test_missing_baseline_is_status_3_with_message_not_a_traceback(self):
        result = self.run_compare(self.root / "does-not-exist.json",
                                  self.write("cur.json", bench_doc(100.0)))
        self.assertEqual(result.returncode, 3)
        self.assertIn("seed a fresh baseline", result.stderr)
        self.assertNotIn("Traceback", result.stderr)

    def test_malformed_baseline_is_status_3(self):
        result = self.run_compare(self.write("base.json", "{not json"),
                                  self.write("cur.json", bench_doc(100.0)))
        self.assertEqual(result.returncode, 3)
        self.assertNotIn("Traceback", result.stderr)

    def test_schema_mismatched_baseline_is_status_3(self):
        # Valid JSON, but nothing under a "throughput", "overhead",
        # "serve_throughput", or "scaling_curve" object.
        result = self.run_compare(self.write("base.json", {"other_schema": [1, 2, 3]}),
                                  self.write("cur.json", bench_doc(100.0)))
        self.assertEqual(result.returncode, 3)
        self.assertIn("no throughput, overhead, scaling, or serving metrics",
                      result.stderr)

    def test_missing_current_is_status_2(self):
        result = self.run_compare(self.write("base.json", bench_doc(100.0)),
                                  self.root / "does-not-exist.json")
        self.assertEqual(result.returncode, 2)
        self.assertNotIn("Traceback", result.stderr)

    def test_new_and_missing_metrics_never_fail_the_gate(self):
        baseline = {"benches": {"old": {"throughput": {"gone": 10.0}},
                                "shared": {"throughput": {"kept": 100.0}}}}
        current = {"benches": {"new": {"throughput": {"fresh": 5.0}},
                               "shared": {"throughput": {"kept": 99.0}}}}
        result = self.run_compare(self.write("base.json", baseline),
                                  self.write("cur.json", current))
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("NEW", result.stdout)
        self.assertIn("MISSING", result.stdout)

    def test_threshold_flag_is_respected(self):
        result = self.run_compare(self.write("base.json", bench_doc(100.0)),
                                  self.write("cur.json", bench_doc(90.0)),
                                  "--threshold", "0.05")
        self.assertEqual(result.returncode, 1)

    def test_overhead_within_tolerance_passes(self):
        result = self.run_compare(self.write("base.json", overhead_doc(100.0, 0.010)),
                                  self.write("cur.json", overhead_doc(100.0, 0.025)))
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_overhead_jump_beyond_tolerance_is_a_regression(self):
        result = self.run_compare(self.write("base.json", overhead_doc(100.0, 0.010)),
                                  self.write("cur.json", overhead_doc(100.0, 0.050)))
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)

    def test_overhead_improvement_never_fails(self):
        result = self.run_compare(self.write("base.json", overhead_doc(100.0, 0.050)),
                                  self.write("cur.json", overhead_doc(100.0, 0.001)))
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_baseline_without_overhead_key_skips_with_notice(self):
        # An older baseline written before the overhead bench existed must
        # not fail the gate when the current run reports overhead metrics.
        result = self.run_compare(self.write("base.json", overhead_doc(100.0)),
                                  self.write("cur.json", overhead_doc(100.0, 0.015)))
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("NEW", result.stdout)

    def test_overhead_threshold_flag_is_respected(self):
        result = self.run_compare(self.write("base.json", overhead_doc(100.0, 0.010)),
                                  self.write("cur.json", overhead_doc(100.0, 0.025)),
                                  "--overhead-threshold", "0.005")
        self.assertEqual(result.returncode, 1)

    def test_serve_metrics_within_threshold_pass(self):
        result = self.run_compare(self.write("base.json", serve_doc(1000.0, 1.0)),
                                  self.write("cur.json", serve_doc(900.0, 1.1)))
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_serve_rps_drop_beyond_threshold_fails(self):
        result = self.run_compare(self.write("base.json", serve_doc(1000.0, 1.0)),
                                  self.write("cur.json", serve_doc(500.0, 1.0)))
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)
        self.assertIn("cache_hit_rps", result.stdout)

    def test_serve_latency_rise_beyond_threshold_fails(self):
        # Latencies regress by *rising*: the _rps direction must not be
        # applied to the non-rate metrics of the family.
        result = self.run_compare(self.write("base.json", serve_doc(1000.0, 1.0)),
                                  self.write("cur.json", serve_doc(1000.0, 2.0)))
        self.assertEqual(result.returncode, 1)
        self.assertIn("mean_request_ms", result.stdout)

    def test_serve_improvement_in_both_directions_passes(self):
        result = self.run_compare(self.write("base.json", serve_doc(1000.0, 1.0)),
                                  self.write("cur.json", serve_doc(4000.0, 0.2)))
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_serve_only_baseline_is_not_a_schema_mismatch(self):
        result = self.run_compare(self.write("base.json", serve_doc(1000.0, 1.0)),
                                  self.write("cur.json", serve_doc(1000.0, 1.0)))
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_flat_scaling_curve_within_point_threshold_passes(self):
        result = self.run_compare(self.write("base.json", scaling_doc(FLAT_CURVE)),
                                  self.write("cur.json", scaling_doc(
                                      {n: v * 1.10 for n, v in FLAT_CURVE.items()})))
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_scaling_point_regression_fails(self):
        slower_top = dict(FLAT_CURVE)
        slower_top[16384] = FLAT_CURVE[16384] * 1.40  # > 25% slower at one n
        result = self.run_compare(self.write("base.json", scaling_doc(FLAT_CURVE)),
                                  self.write("cur.json", scaling_doc(slower_top)))
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)
        self.assertIn("n_16384", result.stdout)

    def test_scaling_point_improvement_never_fails(self):
        result = self.run_compare(self.write("base.json", scaling_doc(FLAT_CURVE)),
                                  self.write("cur.json", scaling_doc(
                                      {n: v * 0.5 for n, v in FLAT_CURVE.items()})))
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_unflat_current_curve_fails_even_without_a_baseline(self):
        # The acceptance bar (largest n <= 2x the n_1024 point) binds on the
        # first night too, when the baseline is yet to be seeded.
        steep = dict(FLAT_CURVE)
        steep[65536] = FLAT_CURVE[1024] * 2.5
        result = self.run_compare(self.root / "does-not-exist.json",
                                  self.write("cur.json", scaling_doc(steep)))
        self.assertEqual(result.returncode, 1)
        self.assertIn("flat-curve gate", result.stdout)

    def test_flat_factor_flag_is_respected(self):
        result = self.run_compare(self.root / "does-not-exist.json",
                                  self.write("cur.json", scaling_doc(FLAT_CURVE)),
                                  "--flat-factor", "1.5")
        self.assertEqual(result.returncode, 1)  # 290/160 = 1.81 > 1.5

    def test_scaling_only_baseline_is_not_a_schema_mismatch(self):
        result = self.run_compare(self.write("base.json", scaling_doc(FLAT_CURVE)),
                                  self.write("cur.json", scaling_doc(FLAT_CURVE)))
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_dropping_the_largest_n_point_fails(self):
        shrunk = {n: v for n, v in FLAT_CURVE.items() if n != 65536}
        result = self.run_compare(self.write("base.json", scaling_doc(FLAT_CURVE)),
                                  self.write("cur.json", scaling_doc(shrunk)))
        self.assertEqual(result.returncode, 1)
        self.assertIn("largest point n_65536", result.stdout)

    def test_dropping_a_middle_point_only_reports_missing(self):
        shrunk = {n: v for n, v in FLAT_CURVE.items() if n != 16384}
        result = self.run_compare(self.write("base.json", scaling_doc(FLAT_CURVE)),
                                  self.write("cur.json", scaling_doc(shrunk)))
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("MISSING", result.stdout)


if __name__ == "__main__":
    unittest.main()
