#!/usr/bin/env python3
"""End-to-end serving-API contract, registered with ctest.

Launches the real netcons_serve daemon on a kernel-assigned loopback port
and drives the netcons-serve-v1 API with stdlib http.client, checking the
guarantees docs/serving-api.md makes and CI relies on:

  * POST /v1/campaigns accepts a spec, returns its fingerprint id, and a
    poll loop on GET /v1/campaigns/{id} reaches "done";
  * the served summary / summary.csv are byte-identical to what
    `netcons_campaign --json/--csv` emits for the same spec, the served
    records are byte-identical to `netcons_merge --compact` over the CLI
    spool, and the served report is byte-identical to
    `netcons_report --json` (the determinism contract);
  * re-POSTing the identical spec answers 200 with "cached": true —
    no trials run again;
  * malformed documents get a 400 netcons-serve-v1 error envelope,
    unknown ids and endpoints a 404, artifact requests on unfinished
    jobs a 409, and GET /v1/metrics snapshots the serve.* counters.

Usage: test_serve_api.py NETCONS_SERVE NETCONS_CAMPAIGN NETCONS_MERGE \
           NETCONS_REPORT

Stdlib only.
"""

import http.client
import json
import pathlib
import subprocess
import sys
import tempfile
import time
import unittest

SERVE, CAMPAIGN, MERGE, REPORT = (str(pathlib.Path(p).resolve())
                                  for p in sys.argv[1:5])

SPEC = {"protocols": ["cycle-cover"], "ns": [16, 24], "trials": 6, "seed": 7}
SPEC_ARGS = ["--protocols", "cycle-cover", "--ns", "16,24",
             "--trials", "6", "--seed", "7"]


def request(port, method, target, body=None):
    """One request; returns (status, headers, body bytes)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        connection.request(method, target, body=payload)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class ServeApiTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.dir = tempfile.TemporaryDirectory(prefix="netcons_serve_api_")
        cls.root = pathlib.Path(cls.dir.name)
        (cls.root / "cli").mkdir()

        cls.daemon = subprocess.Popen(
            [SERVE, "--cache", str(cls.root / "cache"), "--port", "0",
             "--quiet"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        announce = cls.daemon.stdout.readline().strip()
        assert announce.startswith("netcons_serve listening on "), announce
        cls.port = int(announce.rsplit(":", 1)[1])

        # The CLI artifacts the daemon's bytes must match.
        cli = cls.root / "cli"
        result = subprocess.run(
            [CAMPAIGN, *SPEC_ARGS, "--json", "summary.json", "--csv",
             "summary.csv", "--records", "records", "--quiet"],
            cwd=cli, capture_output=True, text=True, timeout=240)
        assert result.returncode == 0, result.stderr
        result = subprocess.run(
            [MERGE, "records", "--compact", "records.jsonl", "--quiet"],
            cwd=cli, capture_output=True, text=True, timeout=240)
        assert result.returncode == 0, result.stderr
        result = subprocess.run(
            [REPORT, "records.jsonl", "--json", "report.json", "--quiet"],
            cwd=cli, capture_output=True, text=True, timeout=240)
        assert result.returncode == 0, result.stderr

    @classmethod
    def tearDownClass(cls):
        cls.daemon.terminate()
        try:
            cls.daemon.wait(timeout=30)
        except subprocess.TimeoutExpired:
            cls.daemon.kill()
            cls.daemon.wait()
        cls.dir.cleanup()

    def submit_and_wait(self):
        status, _, body = request(self.port, "POST", "/v1/campaigns", SPEC)
        self.assertIn(status, (200, 202), body)
        document = json.loads(body)
        self.assertEqual(document["schema"], "netcons-serve-v1")
        job = document["id"]
        self.assertRegex(job, r"^[0-9a-f]{16}$")
        deadline = time.monotonic() + 240
        while time.monotonic() < deadline:
            status, _, body = request(self.port, "GET", f"/v1/campaigns/{job}")
            self.assertEqual(status, 200, body)
            polled = json.loads(body)
            self.assertEqual(polled["schema"], "netcons-serve-v1")
            if polled["state"] == "done":
                self.assertEqual(polled["trials_done"],
                                 polled["trials_total"])
                return job, document
            self.assertIn(polled["state"], ("queued", "running"), body)
            time.sleep(0.05)
        self.fail("campaign never reached done")

    def test_served_artifacts_match_cli_bytes(self):
        job, _ = self.submit_and_wait()
        for artifact, cli_name, content_type in (
                ("summary", "summary.json", "application/json"),
                ("summary.csv", "summary.csv", "text/csv"),
                ("records", "records.jsonl", "application/x-ndjson"),
                ("report", "report.json", "application/json")):
            status, headers, body = request(
                self.port, "GET", f"/v1/campaigns/{job}/{artifact}")
            self.assertEqual(status, 200, body)
            self.assertEqual(headers["Content-Type"], content_type)
            expected = (self.root / "cli" / cli_name).read_bytes()
            self.assertEqual(body, expected,
                             f"{artifact} differs from the CLI bytes")

    def test_identical_resubmit_is_a_cache_hit(self):
        self.submit_and_wait()
        status, _, body = request(self.port, "POST", "/v1/campaigns", SPEC)
        self.assertEqual(status, 200, body)
        document = json.loads(body)
        self.assertTrue(document["cached"], body)
        self.assertEqual(document["state"], "done")

    def test_error_envelopes(self):
        for method, target, body, expect in (
                ("POST", "/v1/campaigns", {"nonsense": 1}, 400),
                ("GET", "/v1/campaigns/ffffffffffffffff", None, 404),
                ("GET", "/v1/campaigns/ffffffffffffffff/summary", None, 404),
                ("GET", "/v1/nope", None, 404),
                ("DELETE", "/v1/campaigns", None, 405)):
            status, _, raw = request(self.port, method, target, body)
            self.assertEqual(status, expect, (target, raw))
            envelope = json.loads(raw)
            self.assertEqual(envelope["schema"], "netcons-serve-v1")
            self.assertEqual(envelope["error"]["status"], expect)
            self.assertTrue(envelope["error"]["message"])

    def test_bad_spec_reports_the_builder_diagnostic(self):
        status, _, raw = request(self.port, "POST", "/v1/campaigns",
                                 {"protocols": ["no-such-protocol"],
                                  "ns": [8]})
        self.assertEqual(status, 400, raw)
        self.assertIn("no-such-protocol",
                      json.loads(raw)["error"]["message"])

    def test_metrics_snapshot_counts_requests(self):
        request(self.port, "GET", "/v1/metrics")
        status, _, body = request(self.port, "GET", "/v1/metrics")
        self.assertEqual(status, 200, body)
        snapshot = json.loads(body)
        self.assertEqual(snapshot["schema"], "netcons-metrics-v1")
        self.assertGreaterEqual(snapshot["counters"]["serve.requests"], 2)


if __name__ == "__main__":
    sys.argv = sys.argv[:1]  # unittest.main must not see the binary paths
    unittest.main()
