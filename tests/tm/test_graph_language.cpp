#include "tm/graph_language.hpp"

#include "graph/predicates.hpp"
#include "graph/random_graphs.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace netcons::tm {
namespace {

TEST(GraphLanguage, ConnectedDecider) {
  const auto lang = connected_language();
  EXPECT_TRUE(lang.decide(Graph::line(5)));
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_FALSE(lang.decide(g));
  EXPECT_EQ(lang.space_class, "O(n)");
}

TEST(GraphLanguage, MaxDegreeDecider) {
  const auto lang = max_degree_language(2);
  EXPECT_TRUE(lang.decide(Graph::ring(5)));
  EXPECT_FALSE(lang.decide(Graph::star(5)));
}

TEST(GraphLanguage, TriangleDeciders) {
  const auto free_lang = triangle_free_language();
  const auto has_lang = has_triangle_language();
  EXPECT_TRUE(free_lang.decide(Graph::ring(5)));
  EXPECT_FALSE(free_lang.decide(Graph::clique(3)));
  EXPECT_TRUE(has_lang.decide(Graph::clique(4)));
  EXPECT_FALSE(has_lang.decide(Graph::line(6)));
}

TEST(GraphLanguage, EvenEdgesDecider) {
  const auto lang = even_edges_language();
  EXPECT_TRUE(lang.decide(Graph(3)));           // 0 edges
  EXPECT_FALSE(lang.decide(Graph::line(2)));    // 1 edge
  EXPECT_TRUE(lang.decide(Graph::line(3)));     // 2 edges
}

TEST(GraphLanguage, BipartiteDecider) {
  const auto lang = bipartite_language();
  EXPECT_TRUE(lang.decide(Graph::line(6)));
  EXPECT_TRUE(lang.decide(Graph::ring(6)));
  EXPECT_FALSE(lang.decide(Graph::ring(5)));
  EXPECT_FALSE(lang.decide(Graph::clique(3)));
  EXPECT_TRUE(lang.decide(Graph::star(7)));
}

TEST(GraphLanguage, HamiltonianPathDecider) {
  const auto lang = hamiltonian_path_language();
  EXPECT_TRUE(lang.decide(Graph::line(6)));
  EXPECT_TRUE(lang.decide(Graph::ring(6)));
  EXPECT_TRUE(lang.decide(Graph::clique(5)));
  EXPECT_FALSE(lang.decide(Graph::star(5)));  // star of 5 has no ham path
  Graph disconnected(4);
  disconnected.add_edge(0, 1);
  EXPECT_FALSE(lang.decide(disconnected));
}

TEST(GraphLanguage, WorkspaceBitsScaleWithClass) {
  const auto logspace = even_edges_language();
  const auto linear = connected_language();
  // O(log n) workspace grows much slower than O(n).
  EXPECT_LT(logspace.workspace_bits(1024), 100u);
  EXPECT_GT(linear.workspace_bits(1024), 1024u);
  EXPECT_LT(linear.workspace_bits(1024), 2048u + 100u);
}

TEST(GraphLanguage, AllLanguagesAgreeWithPredicatesOnRandomGraphs) {
  netcons::Rng rng(31);
  const auto conn = connected_language();
  const auto tri_free = triangle_free_language();
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = netcons::sample_gnp(9, 0.3, rng);
    EXPECT_EQ(conn.decide(g), netcons::is_connected(g));
    bool has_tri = false;
    for (int a = 0; a < 9 && !has_tri; ++a) {
      for (int b = a + 1; b < 9 && !has_tri; ++b) {
        for (int c = b + 1; c < 9 && !has_tri; ++c) {
          has_tri = g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c);
        }
      }
    }
    EXPECT_EQ(tri_free.decide(g), !has_tri);
  }
}

TEST(GraphLanguage, AllLanguagesListIsComplete) {
  EXPECT_EQ(all_languages().size(), 7u);
}

}  // namespace
}  // namespace netcons::tm
