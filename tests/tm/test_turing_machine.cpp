#include "tm/turing_machine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bitset>

namespace netcons::tm {
namespace {

TEST(TuringMachine, BinaryIncrementSimpleCases) {
  const TuringMachine m = binary_increment();
  struct Case {
    std::string in, out;
  };
  for (const auto& c : {Case{"0", "1"}, Case{"01", "10"}, Case{"011", "100"},
                        Case{"0111", "1000"}, Case{"0101", "0110"}}) {
    const RunResult r = run(m, c.in, 16, 10000);
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(r.tape, c.out) << c.in;
  }
}

TEST(TuringMachine, BinaryIncrementSweep) {
  const TuringMachine m = binary_increment();
  for (unsigned v = 0; v < 64; ++v) {
    std::string in = "0" + std::bitset<6>(v).to_string();  // leading 0 guard
    const RunResult r = run(m, in, 16, 10000);
    ASSERT_TRUE(r.accepted) << in;
    std::string expect = std::bitset<7>(v + 1).to_string();
    // Normalize: strip leading zeros from both before comparing values.
    const auto strip = [](std::string s) {
      const auto pos = s.find('1');
      return pos == std::string::npos ? std::string("0") : s.substr(pos);
    };
    EXPECT_EQ(strip(r.tape), strip(expect)) << in;
  }
}

TEST(TuringMachine, PalindromeAgainstReference) {
  const TuringMachine m = palindrome();
  for (unsigned bits = 0; bits < 256; ++bits) {
    for (std::size_t len : {0u, 1u, 3u, 5u, 8u}) {
      std::string s;
      for (std::size_t i = 0; i < len; ++i) s.push_back((bits >> i) & 1 ? '1' : '0');
      std::string rev = s;
      std::reverse(rev.begin(), rev.end());
      const bool expect = (s == rev);
      const RunResult r = run(m, s, 32, 100000);
      ASSERT_TRUE(r.halted) << s;
      EXPECT_EQ(r.accepted, expect) << s;
    }
  }
}

TEST(TuringMachine, ZerosThenOnesAgainstReference) {
  const TuringMachine m = zeros_then_ones();
  for (unsigned bits = 0; bits < 128; ++bits) {
    for (std::size_t len : {0u, 1u, 2u, 4u, 6u}) {
      std::string s;
      for (std::size_t i = 0; i < len; ++i) s.push_back((bits >> i) & 1 ? '1' : '0');
      const std::size_t zeros = static_cast<std::size_t>(
          std::count(s.begin(), s.end(), '0'));
      const bool sorted = std::is_sorted(s.begin(), s.end());
      const bool expect = sorted && zeros * 2 == s.size();
      const RunResult r = run(m, s, 32, 100000);
      ASSERT_TRUE(r.halted) << s;
      EXPECT_EQ(r.accepted, expect) << s;
    }
  }
}

TEST(TuringMachine, SpaceBudgetRejectsOverflow) {
  const TuringMachine m = binary_increment();
  // All-ones input overflows past the left edge: bounded-tape reject.
  const RunResult r = run(m, "111", 8, 10000);
  EXPECT_TRUE(r.halted);
  EXPECT_FALSE(r.accepted);
}

TEST(TuringMachine, StepBudgetStopsRunaways) {
  TuringMachine loop;
  loop.name = "loop";
  loop.initial_state = 0;
  loop.accept_state = 9;
  loop.delta[{0, TuringMachine::kBlank}] = {1, TuringMachine::kBlank, Move::Right};
  loop.delta[{1, TuringMachine::kBlank}] = {0, TuringMachine::kBlank, Move::Left};
  const RunResult r = run(loop, "", 4, 100);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.steps, 100u);
}

TEST(TuringMachine, InputBudgetValidation) {
  const TuringMachine m = binary_increment();
  EXPECT_THROW((void)run(m, "0101", 2, 100), std::invalid_argument);
  EXPECT_THROW((void)run(m, "", 0, 100), std::invalid_argument);
}

TEST(TuringMachine, CellsUsedHighWaterMark) {
  const TuringMachine m = binary_increment();
  const RunResult r = run(m, "01", 16, 1000);
  // Scans to the blank after the input: 3 cells touched.
  EXPECT_EQ(r.cells_used, 3u);
}

}  // namespace
}  // namespace netcons::tm
