#include "tm/line_tape.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace netcons::tm {
namespace {

/// Drive a LineTape with uniformly random encounters over `n` population
/// nodes until it halts (or a step budget runs out); returns total steps.
std::uint64_t drive_random(LineTape& tape, int n, std::uint64_t seed,
                           std::uint64_t max_steps = 10'000'000) {
  netcons::Rng rng(seed);
  std::uint64_t steps = 0;
  while (!tape.halted() && steps < max_steps) {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
    if (v >= u) ++v;
    tape.on_interaction(u, v);
    ++steps;
  }
  return steps;
}

TEST(LineTape, RunsBinaryIncrementViaRandomInteractions) {
  // Cells are arbitrary population node ids, deliberately non-contiguous.
  LineTape tape(binary_increment(), {7, 3, 11, 0, 5}, "0110");
  drive_random(tape, 12, 42);
  ASSERT_TRUE(tape.halted());
  EXPECT_TRUE(tape.accepted());
  EXPECT_EQ(tape.tape(), "0111");
}

TEST(LineTape, InitializationWalkPlacesDirectionMarks) {
  LineTape tape(binary_increment(), {0, 1, 2, 3}, "001");
  EXPECT_EQ(tape.phase(), LineTape::Phase::InitToRight);
  // Feed exactly the pending encounters: walk right, then walk back left.
  while (tape.phase() != LineTape::Phase::Working) {
    const auto pending = tape.pending_encounter();
    ASSERT_TRUE(pending.has_value());
    ASSERT_TRUE(tape.on_interaction(pending->first, pending->second));
  }
  // After initialization the head is at the left endpoint with 'r' marks to
  // its right (Figure 5's final panel).
  EXPECT_EQ(tape.head_position(), 0);
  for (int pos = 1; pos < 4; ++pos) {
    EXPECT_EQ(tape.mark(pos), LineTape::Mark::Right) << pos;
  }
}

TEST(LineTape, MarksTrackHeadDuringWork) {
  LineTape tape(binary_increment(), {0, 1, 2}, "01");
  while (!tape.halted()) {
    const auto pending = tape.pending_encounter();
    ASSERT_TRUE(pending.has_value());
    tape.on_interaction(pending->first, pending->second);
    if (tape.phase() == LineTape::Phase::Working && !tape.halted()) {
      const int head = tape.head_position();
      for (int pos = 0; pos < head; ++pos) {
        EXPECT_EQ(tape.mark(pos), LineTape::Mark::Left);
      }
      for (int pos = head + 1; pos < 3; ++pos) {
        EXPECT_EQ(tape.mark(pos), LineTape::Mark::Right);
      }
    }
  }
  EXPECT_TRUE(tape.accepted());
  EXPECT_EQ(tape.tape(), "10");
}

TEST(LineTape, IgnoresIrrelevantInteractions) {
  LineTape tape(binary_increment(), {0, 1, 2, 3}, "000");
  const auto before = tape.interactions_used();
  EXPECT_FALSE(tape.on_interaction(0, 2));   // not adjacent
  EXPECT_FALSE(tape.on_interaction(1, 2));   // head is not here
  EXPECT_FALSE(tape.on_interaction(9, 10));  // not even on the line
  EXPECT_EQ(tape.interactions_used(), before);
}

TEST(LineTape, PalindromeOnLine) {
  // The scanner needs a blank cell to the right of the input, so the line
  // is one cell longer than the word.
  LineTape tape(palindrome(), {4, 1, 9, 2, 6, 3}, "01010");
  drive_random(tape, 10, 7);
  ASSERT_TRUE(tape.halted());
  EXPECT_TRUE(tape.accepted());

  LineTape no(palindrome(), {4, 1, 9, 2, 6, 3}, "01001");
  drive_random(no, 10, 7);
  ASSERT_TRUE(no.halted());
  EXPECT_FALSE(no.accepted());
}

TEST(LineTape, BoundedTapeRejectsOverflow) {
  // Increment of all-ones walks off the left edge: bounded-tape reject.
  LineTape tape(binary_increment(), {0, 1, 2}, "111");
  drive_random(tape, 6, 9);
  ASSERT_TRUE(tape.halted());
  EXPECT_FALSE(tape.accepted());
}

TEST(LineTape, ValidatesConstruction) {
  EXPECT_THROW(LineTape(binary_increment(), {0}, ""), std::invalid_argument);
  EXPECT_THROW(LineTape(binary_increment(), {0, 1}, "00000"), std::invalid_argument);
}

TEST(LineTape, InteractionCountExceedsTmSteps) {
  // Scheduling misses make the interaction count strictly dominate the
  // TM's own step count (the whole point of the distributed execution).
  LineTape tape(binary_increment(), {0, 1, 2, 3, 4, 5}, "00101");
  const auto total = drive_random(tape, 12, 11);
  ASSERT_TRUE(tape.halted());
  EXPECT_GT(total, tape.tm_steps());
  EXPECT_GE(tape.interactions_used(), tape.tm_steps());
}

}  // namespace
}  // namespace netcons::tm
