// Placement geometry and determinism: the spatial layer's contract is
// that an embedding is a pure function of (layout, n, seed), that the
// draw count depends only on (layout, n) -- so the naive scheduler and
// the census weight model can build it at different times and leave the
// trial's stream in the same state -- and that the grid layout consumes
// no randomness at all.
#include "spatial/placement.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace netcons {
namespace {

using spatial::Layout;
using spatial::Placement;

constexpr Layout kAllLayouts[] = {Layout::kUniform, Layout::kClustered, Layout::kGrid};

TEST(Placement, LayoutNamesRoundTrip) {
  for (const Layout layout : kAllLayouts) {
    const auto back = spatial::layout_by_name(spatial::layout_name(layout));
    ASSERT_TRUE(back.has_value()) << spatial::layout_name(layout);
    EXPECT_EQ(*back, layout);
  }
  EXPECT_FALSE(spatial::layout_by_name("ring").has_value());
  EXPECT_FALSE(spatial::layout_by_name("").has_value());
}

TEST(Placement, AllLayoutsEmbedInTheUnitSquare) {
  // Clustered offsets are clamped, so every layout stays in [0, 1]^2 for
  // any n -- the proximity cell bucketing indexes by position and would
  // read out of bounds otherwise.
  for (const Layout layout : kAllLayouts) {
    for (const int n : {1, 2, 7, 64, 1000}) {
      Rng rng(42);
      const Placement placement = Placement::make(layout, n, rng);
      ASSERT_EQ(placement.size(), n);
      for (int u = 0; u < n; ++u) {
        const spatial::Point& p = placement.position(u);
        EXPECT_GE(p.x, 0.0) << spatial::layout_name(layout) << " node " << u;
        EXPECT_LE(p.x, 1.0) << spatial::layout_name(layout) << " node " << u;
        EXPECT_GE(p.y, 0.0) << spatial::layout_name(layout) << " node " << u;
        EXPECT_LE(p.y, 1.0) << spatial::layout_name(layout) << " node " << u;
      }
    }
  }
}

TEST(Placement, SameSeedSameEmbeddingAndStreamState) {
  for (const Layout layout : kAllLayouts) {
    Rng a(7);
    Rng b(7);
    const Placement first = Placement::make(layout, 65, a);
    const Placement second = Placement::make(layout, 65, b);
    for (int u = 0; u < 65; ++u) {
      EXPECT_EQ(first.position(u).x, second.position(u).x);
      EXPECT_EQ(first.position(u).y, second.position(u).y);
    }
    // Both streams consumed the same number of draws: the next value
    // agrees. This is the cross-engine stream-state invariant.
    EXPECT_EQ(a(), b()) << spatial::layout_name(layout);
  }
}

TEST(Placement, DifferentSeedsGiveDifferentEmbeddings) {
  for (const Layout layout : {Layout::kUniform, Layout::kClustered}) {
    Rng a(1);
    Rng b(2);
    const Placement first = Placement::make(layout, 32, a);
    const Placement second = Placement::make(layout, 32, b);
    bool any_difference = false;
    for (int u = 0; u < 32 && !any_difference; ++u) {
      any_difference = first.position(u).x != second.position(u).x ||
                       first.position(u).y != second.position(u).y;
    }
    EXPECT_TRUE(any_difference) << spatial::layout_name(layout);
  }
}

TEST(Placement, GridConsumesNoRandomness) {
  Rng used(5);
  Rng untouched(5);
  const Placement placement = Placement::make(Layout::kGrid, 50, used);
  ASSERT_EQ(placement.size(), 50);
  EXPECT_EQ(used(), untouched());
}

TEST(Placement, GridIsTheLatticeOfCellCenters) {
  // side = ceil(sqrt(9)) = 3, row-major cell centers.
  Rng rng(0);
  const Placement placement = Placement::make(Layout::kGrid, 9, rng);
  for (int u = 0; u < 9; ++u) {
    EXPECT_DOUBLE_EQ(placement.position(u).x, (u % 3 + 0.5) / 3.0) << u;
    EXPECT_DOUBLE_EQ(placement.position(u).y, (u / 3 + 0.5) / 3.0) << u;
  }
}

TEST(Placement, DistanceIsEuclideanAndSymmetric) {
  Rng rng(11);
  const Placement placement = Placement::make(Layout::kUniform, 16, rng);
  for (int u = 0; u < 16; ++u) {
    EXPECT_EQ(placement.distance(u, u), 0.0);
    for (int v = u + 1; v < 16; ++v) {
      const double dx = placement.position(u).x - placement.position(v).x;
      const double dy = placement.position(u).y - placement.position(v).y;
      EXPECT_NEAR(placement.distance(u, v), std::sqrt(dx * dx + dy * dy), 1e-12);
      EXPECT_EQ(placement.distance(u, v), placement.distance(v, u));
    }
  }
}

}  // namespace
}  // namespace netcons
