#include "protocols/protocols.hpp"

#include "analysis/experiment.hpp"
#include "graph/predicates.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

TEST(CycleCover, ThreeStates) {
  EXPECT_EQ(protocols::cycle_cover().protocol.state_count(), 3);
}

class CycleCoverConvergence : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CycleCoverConvergence, StabilizesToCycleCover) {
  const auto [n, seed] = GetParam();
  const auto spec = protocols::cycle_cover();
  const auto result = analysis::run_trial(spec, n,
      trial_seed(2000, static_cast<std::uint64_t>(seed)));
  EXPECT_TRUE(result.stabilized) << "n=" << n;
  EXPECT_TRUE(result.target_ok) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CycleCoverConvergence,
                         ::testing::Combine(::testing::Values(3, 4, 5, 6, 9, 16, 25, 40),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(CycleCover, DegreeInvariantHoldsThroughout) {
  // Theorem 5: a node in state q_i always has active degree exactly i.
  const auto spec = protocols::cycle_cover();
  Simulator sim(spec.protocol, 20, 5);
  for (int burst = 0; burst < 50; ++burst) {
    sim.run(100);
    for (int u = 0; u < sim.world().size(); ++u) {
      EXPECT_EQ(static_cast<int>(sim.world().state(u)), sim.world().active_degree(u));
    }
  }
}

TEST(CycleCover, WasteIsAtMostTwo) {
  const auto spec = protocols::cycle_cover();
  for (int seed = 0; seed < 5; ++seed) {
    Simulator sim(spec.protocol, 11, trial_seed(3000, static_cast<std::uint64_t>(seed)));
    Simulator::StabilityOptions options;
    options.max_steps = spec.max_steps(11);
    const auto report = sim.run_until_stable(options);
    ASSERT_TRUE(report.stabilized);
    int not_in_cycle = 0;
    for (int u = 0; u < sim.world().size(); ++u) {
      if (sim.world().active_degree(u) != 2) ++not_in_cycle;
    }
    EXPECT_LE(not_in_cycle, 2);
  }
}

TEST(CycleCover, MeanTimeIsQuadraticShape) {
  // Theta(n^2): the fitted exponent over a small sweep should be ~2.
  const auto spec = protocols::cycle_cover();
  const auto points = analysis::sweep(spec, {16, 24, 32, 48, 64}, 10, 4242);
  for (const auto& p : points) ASSERT_EQ(p.failures, 0);
  const LinearFit fit = analysis::fit_exponent(points);
  EXPECT_NEAR(fit.slope, 2.0, 0.35);
  EXPECT_GT(fit.r_squared, 0.95);
}

}  // namespace
}  // namespace netcons
