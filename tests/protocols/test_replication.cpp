#include "protocols/protocols.hpp"

#include "analysis/experiment.hpp"
#include "graph/isomorphism.hpp"
#include "graph/random_graphs.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

TEST(Replication, TwelveStatesRandomized) {
  const auto spec = protocols::replication(Graph::line(3));
  EXPECT_EQ(spec.protocol.state_count(), 12);
  EXPECT_TRUE(spec.protocol.randomized());
}

TEST(Replication, RejectsDisconnectedInput) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_THROW((void)protocols::replication(g), std::invalid_argument);
}

TEST(Replication, RejectsTooSmallPopulation) {
  const auto spec = protocols::replication(Graph::line(4));
  Simulator sim(spec.protocol, 6, 1);  // needs >= 8
  EXPECT_THROW(spec.initialize(sim.mutable_world()), std::invalid_argument);
}

class ReplicationShapes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReplicationShapes, CopiesNamedShapes) {
  const auto [shape, seed] = GetParam();
  Graph input;
  switch (shape) {
    case 0: input = Graph::line(4); break;
    case 1: input = Graph::ring(4); break;
    case 2: input = Graph::star(4); break;
    default: input = Graph::clique(3); break;
  }
  const auto spec = protocols::replication(input);
  const int n = 2 * input.order() + 1;  // one spare V2 node
  const auto result =
      analysis::run_trial(spec, n, trial_seed(13000, static_cast<std::uint64_t>(seed)));
  EXPECT_TRUE(result.stabilized);
  EXPECT_TRUE(result.target_ok);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ReplicationShapes,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1, 2)));

TEST(Replication, CopiesRandomConnectedGraphs) {
  Rng rng(404);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph input = sample_bounded_degree_connected(5, 3, rng);
    const auto spec = protocols::replication(input);
    const auto result = analysis::run_trial(spec, 10, trial_seed(14000, rng.split()));
    ASSERT_TRUE(result.stabilized) << "trial " << trial;
    EXPECT_TRUE(result.target_ok) << "trial " << trial;
  }
}

TEST(Replication, ExactCopyViaTheMatching) {
  // Beyond isomorphism: the matched partner of each V1 node carries exactly
  // its row of the adjacency matrix.
  const Graph input = Graph::ring(4);
  const auto spec = protocols::replication(input);
  Simulator sim(spec.protocol, 8, 55);
  spec.initialize(sim.mutable_world());
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(8);
  options.certificate = spec.certificate;
  const auto report = sim.run_until_stable(options);
  ASSERT_TRUE(report.stabilized);
  ASSERT_TRUE(report.certified);

  const World& w = sim.world();
  const StateId r = *spec.protocol.state_by_name("r");
  std::vector<int> match(4, -1);
  for (int u = 0; u < 4; ++u) {
    for (int v = 4; v < 8; ++v) {
      if (w.state(v) == r && w.edge(u, v)) match[static_cast<std::size_t>(u)] = v;
    }
    ASSERT_NE(match[static_cast<std::size_t>(u)], -1);
  }
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) {
      EXPECT_EQ(w.edge(u, v), w.edge(match[static_cast<std::size_t>(u)],
                                     match[static_cast<std::size_t>(v)]));
    }
  }
}

TEST(Replication, SparesStayUntouched) {
  const Graph input = Graph::line(3);
  const auto spec = protocols::replication(input);
  Simulator sim(spec.protocol, 9, 77);  // 3 spare V2 nodes
  spec.initialize(sim.mutable_world());
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(9);
  options.certificate = spec.certificate;
  const auto report = sim.run_until_stable(options);
  ASSERT_TRUE(report.stabilized);
  const StateId r0 = *spec.protocol.state_by_name("r0");
  EXPECT_EQ(sim.world().census(r0), 3);
  for (int v = 0; v < 9; ++v) {
    if (sim.world().state(v) == r0) {
      EXPECT_EQ(sim.world().active_degree(v), 0);
    }
  }
}

}  // namespace
}  // namespace netcons
