#include "protocols/protocols.hpp"

#include "analysis/experiment.hpp"
#include "graph/predicates.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

TEST(GlobalRing, TenStatesAsListedInProtocol5) {
  // The journal version's Protocol 5 lists Q = {q0, q1, q2, l, w, l_bar,
  // l', l'', q2', q2''} -- 10 states (Table 2's "9" predates the l_bar fix).
  EXPECT_EQ(protocols::global_ring().protocol.state_count(), 10);
}

class RingConvergence : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RingConvergence, StabilizesToSpanningRing) {
  const auto [n, seed] = GetParam();
  const auto spec = protocols::global_ring();
  const auto result = analysis::run_trial(spec, n,
      trial_seed(5000, static_cast<std::uint64_t>(seed)));
  EXPECT_TRUE(result.stabilized) << "n=" << n;
  EXPECT_TRUE(result.target_ok) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RingConvergence,
                         ::testing::Combine(::testing::Values(3, 4, 5, 6, 8, 10),
                                            ::testing::Values(1, 2, 3)));

TEST(GlobalRing, PodcBugScenarioIsHandled) {
  // The PODC'14 version allowed one-edge lines to close on each other; the
  // journal fix (l_bar) must still stabilize from populations of size 4
  // (two one-edge lines) for many seeds.
  const auto spec = protocols::global_ring();
  for (int seed = 0; seed < 12; ++seed) {
    const auto result =
        analysis::run_trial(spec, 4, trial_seed(6000, static_cast<std::uint64_t>(seed)));
    EXPECT_TRUE(result.stabilized && result.target_ok) << "seed=" << seed;
  }
}

TEST(GlobalRing, NonSpanningCyclesReopen) {
  // Property: in any stabilized execution the final ring is spanning -- no
  // small blocked cycle survives (the detection rules reopen them).
  const auto spec = protocols::global_ring();
  for (int seed = 0; seed < 6; ++seed) {
    Simulator sim(spec.protocol, 7, trial_seed(7000, static_cast<std::uint64_t>(seed)));
    Simulator::StabilityOptions options;
    options.max_steps = spec.max_steps(7);
    const auto report = sim.run_until_stable(options);
    ASSERT_TRUE(report.stabilized);
    const Graph g = sim.world().output_graph(spec.protocol);
    EXPECT_TRUE(is_spanning_ring(g));
  }
}

}  // namespace
}  // namespace netcons
