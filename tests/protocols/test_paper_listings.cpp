// Spec-conformance tests: every protocol's state count and effective rule
// count must match the paper's listing, and every ProtocolSpec must carry
// complete harness metadata (target, budget, notes). These are the tests
// that catch accidental drift from the published protocols.
#include "protocols/protocols.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

struct Listing {
  ProtocolSpec spec;
  int states;
  int effective_rules;
};

std::vector<Listing> listings() {
  std::vector<Listing> out;
  // Protocol 1: 5 rules listed.
  out.push_back({protocols::simple_global_line(), 5, 5});
  // Protocol 2: 8 rules listed.
  out.push_back({protocols::fast_global_line(), 9, 8});
  // Protocol 10: 6 rules listed.
  out.push_back({protocols::faster_global_line(), 6, 6});
  // Protocol 3: 3 rules.
  out.push_back({protocols::cycle_cover(), 3, 3});
  // Protocol 4: 3 rules.
  out.push_back({protocols::global_star(), 2, 3});
  // Theorem 1 upper bound: 2 rules.
  out.push_back({protocols::spanning_net(), 2, 2});
  // Theorem 15 partition: 4 rules.
  out.push_back({protocols::partition_udm(), 6, 4});
  // Section 7 pre-elected baseline: 1 rule.
  out.push_back({protocols::preelected_line(), 3, 1});
  return out;
}

TEST(PaperListings, StateAndRuleCountsMatch) {
  for (const auto& listing : listings()) {
    EXPECT_EQ(listing.spec.protocol.state_count(), listing.states)
        << listing.spec.protocol.name();
    EXPECT_EQ(listing.spec.protocol.effective_rule_count(), listing.effective_rules)
        << listing.spec.protocol.name();
  }
}

TEST(PaperListings, ParameterizedSizesMatchFormulas) {
  for (int k : {2, 3, 4, 6}) {
    EXPECT_EQ(protocols::krc(k).protocol.state_count(), 2 * (k + 1)) << "k=" << k;
  }
  for (int c : {3, 4, 5, 7}) {
    EXPECT_EQ(protocols::c_cliques(c).protocol.state_count(), 5 * c - 3) << "c=" << c;
  }
  EXPECT_EQ(protocols::replication(Graph::line(3)).protocol.state_count(), 12);
}

TEST(PaperListings, EverySpecCarriesHarnessMetadata) {
  std::vector<ProtocolSpec> all;
  for (auto& listing : listings()) all.push_back(std::move(listing.spec));
  all.push_back(protocols::global_ring());
  all.push_back(protocols::two_rc());
  all.push_back(protocols::krc(3));
  all.push_back(protocols::c_cliques(3));
  all.push_back(protocols::replication(Graph::ring(3)));
  all.push_back(protocols::degree_doubling(2));
  for (const auto& spec : all) {
    EXPECT_TRUE(static_cast<bool>(spec.target)) << spec.protocol.name();
    EXPECT_TRUE(static_cast<bool>(spec.max_steps)) << spec.protocol.name();
    EXPECT_FALSE(spec.notes.empty()) << spec.protocol.name();
    // Budgets must grow with n (sanity of the bound encodings).
    EXPECT_LT(spec.max_steps(8), spec.max_steps(64)) << spec.protocol.name();
  }
}

TEST(PaperListings, OnlyReplicationIsRandomized) {
  EXPECT_TRUE(protocols::replication(Graph::ring(3)).protocol.randomized());
  EXPECT_FALSE(protocols::simple_global_line().protocol.randomized());
  EXPECT_FALSE(protocols::global_ring().protocol.randomized());
  EXPECT_FALSE(protocols::krc(3).protocol.randomized());
  EXPECT_FALSE(protocols::c_cliques(3).protocol.randomized());
}

TEST(PaperListings, DescribeRoundTripsEveryEffectiveRule) {
  // describe() must list exactly effective_rule_count() transitions.
  for (const auto& listing : listings()) {
    const std::string text = listing.spec.protocol.describe();
    std::size_t arrows = 0;
    for (std::size_t pos = text.find("->"); pos != std::string::npos;
         pos = text.find("->", pos + 2)) {
      ++arrows;
    }
    EXPECT_EQ(static_cast<int>(arrows), listing.effective_rules)
        << listing.spec.protocol.name();
  }
}

}  // namespace
}  // namespace netcons
