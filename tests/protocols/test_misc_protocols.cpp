// Spanning-Net (Theorem 1 upper bound), Degree-Doubling (Section 7), and the
// (U, D, M) partition (Theorem 15 substrate).
#include "protocols/protocols.hpp"

#include "analysis/experiment.hpp"
#include "graph/predicates.hpp"
#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

class SpanningNetConvergence : public ::testing::TestWithParam<int> {};

TEST_P(SpanningNetConvergence, EveryNodeGetsCovered) {
  const int n = GetParam();
  const auto spec = protocols::spanning_net();
  const auto result = analysis::run_trial(spec, n,
      trial_seed(15000, static_cast<std::uint64_t>(n)));
  EXPECT_TRUE(result.stabilized);
  EXPECT_TRUE(result.target_ok);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpanningNetConvergence, ::testing::Values(2, 3, 5, 10, 30, 80));

TEST(SpanningNet, TimeTracksNodeCoverShape) {
  // Theorem 1: Theta(n log n) -- the fitted exponent should be near 1.
  const auto spec = protocols::spanning_net();
  const auto points = analysis::sweep(spec, {32, 64, 128, 256}, 20, 616);
  for (const auto& p : points) ASSERT_EQ(p.failures, 0);
  const LinearFit fit = analysis::fit_exponent(points);
  EXPECT_GT(fit.slope, 0.9);
  EXPECT_LT(fit.slope, 1.4);
}

class DegreeDoubling : public ::testing::TestWithParam<int> {};

TEST_P(DegreeDoubling, HubGetsExactly2ToTheD) {
  const int d = GetParam();
  const auto spec = protocols::degree_doubling(d);
  const int n = (1 << d) + 4;  // enough a0 material plus slack
  const auto result =
      analysis::run_trial(spec, n, trial_seed(16000, static_cast<std::uint64_t>(d)));
  ASSERT_TRUE(result.stabilized) << "d=" << d;
  EXPECT_TRUE(result.target_ok) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Depths, DegreeDoubling, ::testing::Values(1, 2, 3, 4));

TEST(DegreeDoubling, StateCountIsLinearInD) {
  // Theta(d) states although the constructed degree is 2^d -- the paper's
  // point that max degree does not lower-bound protocol size.
  const int states_d3 = protocols::degree_doubling(3).protocol.state_count();
  const int states_d6 = protocols::degree_doubling(6).protocol.state_count();
  EXPECT_EQ(states_d6 - states_d3, 2 * 3);  // +2 states per unit of d
  EXPECT_THROW((void)protocols::degree_doubling(0), std::invalid_argument);
}

class PartitionUdm : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionUdm, SplitsIntoMatchedTriples) {
  const auto [n, seed] = GetParam();
  const auto spec = protocols::partition_udm();
  Simulator sim(spec.protocol, n, trial_seed(17000, static_cast<std::uint64_t>(seed)));
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(n);
  options.certificate = spec.certificate;
  const auto report = sim.run_until_stable(options);
  ASSERT_TRUE(report.stabilized) << "n=" << n;

  const Protocol& p = spec.protocol;
  const int qu = sim.world().census(*p.state_by_name("qu"));
  const int qd = sim.world().census(*p.state_by_name("qd"));
  const int qm = sim.world().census(*p.state_by_name("qm"));
  // Every satisfied U-node has exactly one D- and one M-partner; when
  // n % 3 == 2, the leftover unsatisfied qu' keeps a qd partner, so qd may
  // exceed qu by one.
  EXPECT_EQ(qu, qm);
  EXPECT_GE(qd, qu);
  EXPECT_LE(qd - qu, 1);
  EXPECT_GE(3 * qu, n - 2);  // waste <= 2
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionUdm,
                         ::testing::Combine(::testing::Values(6, 9, 10, 11, 15, 30),
                                            ::testing::Values(1, 2, 3)));

class PreelectedLine : public ::testing::TestWithParam<int> {};

TEST_P(PreelectedLine, LeaderBuildsASpanningLine) {
  const int n = GetParam();
  const auto spec = protocols::preelected_line();
  const auto result =
      analysis::run_trial(spec, n, trial_seed(18000, static_cast<std::uint64_t>(n)));
  EXPECT_TRUE(result.stabilized);
  EXPECT_TRUE(result.target_ok);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PreelectedLine, ::testing::Values(2, 3, 5, 10, 25, 50));

TEST(PreelectedLine, MatchesMeetEverybodyShape) {
  // Section 7: Theta(n^2 log n) -- the meet-everybody process paces it.
  const auto spec = protocols::preelected_line();
  const auto points = analysis::sweep(spec, {16, 32, 64, 96}, 10, 616);
  for (const auto& p : points) ASSERT_EQ(p.failures, 0);
  const LinearFit fit = analysis::fit_exponent(points);
  EXPECT_GT(fit.slope, 1.8);
  EXPECT_LT(fit.slope, 2.6);
}

TEST(PreelectedLine, FasterThanAnyLeaderlessLineProtocol) {
  // The whole point of the paper's open question: the pre-elected-leader
  // baseline beats every leaderless construction at moderate n.
  const int n = 32;
  const auto pre = analysis::measure(protocols::preelected_line(), n, 6, 717);
  const auto fast = analysis::measure(protocols::fast_global_line(), n, 6, 718);
  ASSERT_EQ(pre.failures, 0);
  ASSERT_EQ(fast.failures, 0);
  EXPECT_LT(pre.convergence_steps.mean(), fast.convergence_steps.mean());
}

TEST(PartitionUdm, StructureIsThreeWayMatching) {
  const auto spec = protocols::partition_udm();
  Simulator sim(spec.protocol, 12, 99);
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(12);
  options.certificate = spec.certificate;
  ASSERT_TRUE(sim.run_until_stable(options).stabilized);
  const Protocol& p = spec.protocol;
  const StateId qu = *p.state_by_name("qu");
  const StateId qd = *p.state_by_name("qd");
  const StateId qm = *p.state_by_name("qm");
  for (int u = 0; u < 12; ++u) {
    if (sim.world().state(u) != qu) continue;
    int d_count = 0, m_count = 0;
    for (int v : sim.world().active_neighbors(u)) {
      if (sim.world().state(v) == qd) ++d_count;
      if (sim.world().state(v) == qm) ++m_count;
    }
    EXPECT_EQ(d_count, 1);
    EXPECT_EQ(m_count, 1);
  }
}

}  // namespace
}  // namespace netcons
