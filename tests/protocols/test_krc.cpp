#include "protocols/protocols.hpp"

#include "analysis/experiment.hpp"
#include "graph/predicates.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

TEST(Krc, StateCountIs2KPlus2) {
  EXPECT_EQ(protocols::krc(2).protocol.state_count(), 6);
  EXPECT_EQ(protocols::krc(3).protocol.state_count(), 8);
  EXPECT_EQ(protocols::krc(5).protocol.state_count(), 12);
  EXPECT_THROW((void)protocols::krc(1), std::invalid_argument);
}

TEST(Krc, TwoRcIsKrc2) {
  EXPECT_EQ(protocols::two_rc().protocol.state_count(),
            protocols::krc(2).protocol.state_count());
  EXPECT_EQ(protocols::two_rc().protocol.effective_rule_count(),
            protocols::krc(2).protocol.effective_rule_count());
}

class TwoRcConvergence : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TwoRcConvergence, StabilizesToSpanningRing) {
  const auto [n, seed] = GetParam();
  const auto spec = protocols::two_rc();
  const auto result = analysis::run_trial(spec, n,
      trial_seed(8000, static_cast<std::uint64_t>(seed)));
  EXPECT_TRUE(result.stabilized) << "n=" << n;
  ASSERT_TRUE(result.target_ok) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TwoRcConvergence,
                         ::testing::Combine(::testing::Values(3, 4, 5, 6, 8, 10),
                                            ::testing::Values(1, 2)));

TEST(TwoRc, FinalNetworkIsARing) {
  const auto spec = protocols::two_rc();
  Simulator sim(spec.protocol, 8, 1);
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(8);
  options.certificate = spec.certificate;
  const auto report = sim.run_until_stable(options);
  ASSERT_TRUE(report.stabilized);
  EXPECT_TRUE(report.certified);  // never quiescent: the leader swaps forever
  EXPECT_TRUE(is_spanning_ring(sim.world().output_graph(spec.protocol)));
}

class KrcConvergence : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KrcConvergence, ReachesRelaxedKRegularConnected) {
  const auto [k, n, seed] = GetParam();
  if (n < k + 1) GTEST_SKIP();
  const auto spec = protocols::krc(k);
  const auto result = analysis::run_trial(spec, n,
      trial_seed(9000, static_cast<std::uint64_t>(seed)));
  EXPECT_TRUE(result.stabilized) << "k=" << k << " n=" << n;
  EXPECT_TRUE(result.target_ok) << "k=" << k << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, KrcConvergence,
                         ::testing::Combine(::testing::Values(3, 4),
                                            ::testing::Values(6, 8, 9, 12),
                                            ::testing::Values(1, 2)));

TEST(Krc, IndexTracksDegreeInvariant) {
  // The defining invariant: a node in q_i / l_i has active degree exactly i.
  const auto spec = protocols::krc(3);
  const Protocol& p = spec.protocol;
  Simulator sim(p, 12, 21);
  for (int burst = 0; burst < 80; ++burst) {
    sim.run(100);
    for (int u = 0; u < sim.world().size(); ++u) {
      const std::string& name = p.state_name(sim.world().state(u));
      const int index = std::stoi(name.substr(1));
      EXPECT_EQ(index, sim.world().active_degree(u))
          << "state " << name << " with degree " << sim.world().active_degree(u);
    }
  }
}

TEST(Krc, EveryComponentKeepsALeader) {
  // Correctness hinges on components never going leaderless.
  const auto spec = protocols::krc(2);
  const Protocol& p = spec.protocol;
  Simulator sim(p, 10, 31);
  for (int burst = 0; burst < 80; ++burst) {
    sim.run(100);
    const Graph g = sim.world().active_graph();
    for (const auto& comp : g.components()) {
      if (comp.size() == 1 && sim.world().state(comp[0]) == *p.state_by_name("q0")) {
        continue;  // isolated fresh nodes have no leader yet
      }
      int leaders = 0;
      for (int u : comp) {
        if (p.state_name(sim.world().state(u))[0] == 'l') ++leaders;
      }
      EXPECT_GE(leaders, 1) << "leaderless component of size " << comp.size();
    }
  }
}

}  // namespace
}  // namespace netcons
