#include "protocols/protocols.hpp"

#include "analysis/experiment.hpp"
#include "graph/predicates.hpp"
#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

TEST(GlobalStar, TwoStatesOptimal) {
  EXPECT_EQ(protocols::global_star().protocol.state_count(), 2);
}

class StarConvergence : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StarConvergence, StabilizesToSpanningStar) {
  const auto [n, seed] = GetParam();
  const auto spec = protocols::global_star();
  const auto result = analysis::run_trial(spec, n,
      trial_seed(4000, static_cast<std::uint64_t>(seed)));
  EXPECT_TRUE(result.stabilized) << "n=" << n;
  EXPECT_TRUE(result.target_ok) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, StarConvergence,
                         ::testing::Combine(::testing::Values(2, 3, 4, 5, 8, 12, 20, 30),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(GlobalStar, CentersNeverIncrease) {
  const auto spec = protocols::global_star();
  const StateId c = *spec.protocol.state_by_name("c");
  Simulator sim(spec.protocol, 15, 7);
  int previous = sim.world().census(c);
  for (int burst = 0; burst < 100; ++burst) {
    sim.run(50);
    const int now = sim.world().census(c);
    EXPECT_LE(now, previous);
    previous = now;
  }
  EXPECT_GE(previous, 1);  // at least one center survives
}

TEST(GlobalStar, MeanTimeMatchesN2LogNShape) {
  const auto spec = protocols::global_star();
  const auto points = analysis::sweep(spec, {12, 18, 26, 38, 52}, 8, 777);
  for (const auto& p : points) ASSERT_EQ(p.failures, 0);
  // Theta(n^2 log n) fits a power law with exponent slightly above 2.
  const LinearFit fit = analysis::fit_exponent(points);
  EXPECT_GT(fit.slope, 1.8);
  EXPECT_LT(fit.slope, 2.7);
}

TEST(GlobalStar, LowerBoundedByMeetEverybody) {
  // Theorem 6's argument: the eventual center must meet everybody, so the
  // measured mean must dominate a constant fraction of Theta(n^2 log n).
  const auto spec = protocols::global_star();
  const int n = 24;
  const auto point = analysis::measure(spec, n, 10, 888);
  ASSERT_EQ(point.failures, 0);
  EXPECT_GT(point.convergence_steps.mean(),
            0.25 * theory::meet_everybody(static_cast<std::uint64_t>(n)));
}

}  // namespace
}  // namespace netcons
