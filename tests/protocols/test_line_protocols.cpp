// Section 4: all three spanning-line constructors stabilize to a spanning
// line for every population size and seed tried, and Simple-Global-Line's
// reachable configurations satisfy the paper's structural invariant
// (a collection of lines and isolated nodes, each line with one leader).
#include "protocols/protocols.hpp"

#include "analysis/experiment.hpp"
#include "graph/predicates.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace netcons {
namespace {

using protocols::fast_global_line;
using protocols::faster_global_line;
using protocols::simple_global_line;

ProtocolSpec line_spec(int which) {
  switch (which) {
    case 0: return simple_global_line();
    case 1: return fast_global_line();
    default: return faster_global_line();
  }
}

TEST(LineProtocols, StateCountsMatchPaper) {
  EXPECT_EQ(simple_global_line().protocol.state_count(), 5);
  EXPECT_EQ(fast_global_line().protocol.state_count(), 9);
  EXPECT_EQ(faster_global_line().protocol.state_count(), 6);
}

class LineConvergence : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LineConvergence, StabilizesToSpanningLine) {
  const auto [which, n, seed] = GetParam();
  const ProtocolSpec spec = line_spec(which);
  const auto result = analysis::run_trial(spec, n,
      trial_seed(1000, static_cast<std::uint64_t>(seed)));
  EXPECT_TRUE(result.stabilized) << spec.protocol.name() << " n=" << n;
  EXPECT_TRUE(result.target_ok) << spec.protocol.name() << " n=" << n;
  EXPECT_GT(result.convergence_step, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LineConvergence,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(2, 3, 4, 5, 8, 13, 20),
                                            ::testing::Values(1, 2, 3)));

TEST(LineProtocols, SimpleGlobalLineInvariantHoldsMidway) {
  // Theorem 3's correctness invariant: every reachable configuration is a
  // collection of lines (each with exactly one leader, in state l or w) and
  // isolated q0 nodes.
  const ProtocolSpec spec = simple_global_line();
  const auto q0 = *spec.protocol.state_by_name("q0");
  const auto l = *spec.protocol.state_by_name("l");
  const auto w = *spec.protocol.state_by_name("w");

  Simulator sim(spec.protocol, 17, 77);
  for (int burst = 0; burst < 60; ++burst) {
    sim.run(250);
    const Graph g = sim.world().active_graph();
    for (const auto& comp : g.components()) {
      const Graph sub = g.induced(comp);
      if (comp.size() == 1) {
        const StateId s = sim.world().state(comp[0]);
        EXPECT_TRUE(s == q0 || s == l) << "isolated node in unexpected state";
        continue;
      }
      EXPECT_TRUE(is_spanning_line(sub)) << "component is not a line";
      int leaders = 0;
      for (int u : comp) {
        const StateId s = sim.world().state(u);
        if (s == l || s == w) ++leaders;
      }
      EXPECT_EQ(leaders, 1) << "line without a unique leader";
    }
  }
}

TEST(LineProtocols, FastGlobalLineSleepingLinesOnlyShrink) {
  // Protocol 2's key mechanism: once a line falls asleep (leader f1) it can
  // only lose nodes. We verify a weaker checkable consequence: f-states
  // never belong to a component that also holds an awake leader (l, l', l'').
  const ProtocolSpec spec = fast_global_line();
  const auto l = *spec.protocol.state_by_name("l");
  const auto lp = *spec.protocol.state_by_name("l'");
  const auto lpp = *spec.protocol.state_by_name("l''");
  const auto f1 = *spec.protocol.state_by_name("f1");

  Simulator sim(spec.protocol, 15, 99);
  for (int burst = 0; burst < 60; ++burst) {
    sim.run(200);
    const Graph g = sim.world().active_graph();
    for (const auto& comp : g.components()) {
      if (comp.size() == 1) continue;
      int awake = 0;
      int sleeping = 0;
      for (int u : comp) {
        const StateId s = sim.world().state(u);
        if (s == l || s == lp || s == lpp) ++awake;
        if (s == f1) ++sleeping;
      }
      EXPECT_LE(awake + sleeping, 2) << "component with too many leaders";
      // A component has at most one awake leader; transiently, an awake line
      // is attached to the sleeping line it steals from.
      EXPECT_LE(awake, 1);
    }
  }
}

TEST(LineProtocols, FastBeatsSimpleBeyondTheCrossover) {
  // O(n^3) vs Omega(n^4): Simple-Global-Line's small constants win at small
  // n; by n = 48 the asymptotics dominate (measured crossover ~n=40).
  const int n = 48;
  const int trials = 6;
  const auto simple = analysis::measure(simple_global_line(), n, trials, 42);
  const auto fast = analysis::measure(fast_global_line(), n, trials, 43);
  ASSERT_EQ(simple.failures, 0);
  ASSERT_EQ(fast.failures, 0);
  EXPECT_LT(fast.convergence_steps.mean(), simple.convergence_steps.mean());
}

TEST(LineProtocols, Protocol10OutpacesBothAtModerateN) {
  // Section 7's conjecture: the follower-dissolution variant is faster; the
  // measurements support it decisively at n = 32.
  const int n = 32;
  const auto fast = analysis::measure(fast_global_line(), n, 6, 53);
  const auto faster = analysis::measure(faster_global_line(), n, 6, 54);
  ASSERT_EQ(fast.failures, 0);
  ASSERT_EQ(faster.failures, 0);
  EXPECT_LT(faster.convergence_steps.mean(), fast.convergence_steps.mean());
}

}  // namespace
}  // namespace netcons
