#include "protocols/protocols.hpp"

#include "analysis/experiment.hpp"
#include "graph/predicates.hpp"

#include <gtest/gtest.h>

namespace netcons {
namespace {

TEST(CCliques, StateCountIs5CMinus3) {
  EXPECT_EQ(protocols::c_cliques(3).protocol.state_count(), 12);
  EXPECT_EQ(protocols::c_cliques(4).protocol.state_count(), 17);
  EXPECT_EQ(protocols::c_cliques(5).protocol.state_count(), 22);
  EXPECT_THROW((void)protocols::c_cliques(2), std::invalid_argument);
}

class CliqueConvergence : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CliqueConvergence, PartitionsIntoCliques) {
  const auto [c, n, seed] = GetParam();
  const auto spec = protocols::c_cliques(c);
  const auto result =
      analysis::run_trial(spec, n, trial_seed(11000, static_cast<std::uint64_t>(seed)));
  EXPECT_TRUE(result.stabilized) << "c=" << c << " n=" << n;
  EXPECT_TRUE(result.target_ok) << "c=" << c << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CliqueConvergence,
                         ::testing::Combine(::testing::Values(3, 4),
                                            ::testing::Values(6, 7, 9, 12),
                                            ::testing::Values(1, 2)));

TEST(CCliques, ExactPartitionWhenDivisible) {
  const auto spec = protocols::c_cliques(3);
  Simulator sim(spec.protocol, 9, 3);
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(9);
  options.certificate = spec.certificate;
  const auto report = sim.run_until_stable(options);
  ASSERT_TRUE(report.stabilized);
  const Graph g = sim.world().output_graph(spec.protocol);
  int triangles = 0;
  for (const auto& comp : g.components()) {
    if (comp.size() == 3) ++triangles;
  }
  EXPECT_EQ(triangles, 3);
}

TEST(CCliques, LeftoverComponentIsUnique) {
  const auto spec = protocols::c_cliques(3);
  for (int seed = 0; seed < 4; ++seed) {
    Simulator sim(spec.protocol, 10, trial_seed(12000, static_cast<std::uint64_t>(seed)));
    Simulator::StabilityOptions options;
    options.max_steps = spec.max_steps(10);
    options.certificate = spec.certificate;
    const auto report = sim.run_until_stable(options);
    ASSERT_TRUE(report.stabilized);
    const Graph g = sim.world().output_graph(spec.protocol);
    int small = 0;
    for (const auto& comp : g.components()) {
      if (static_cast<int>(comp.size()) < 3) ++small;
    }
    EXPECT_LE(small, 1);
  }
}

TEST(CCliques, CounterEqualsFollowerConnectionsInvariant) {
  // Counter semantics: a follower in counter state i (or visited state l'_i)
  // has exactly i - 1 active connections to other counter-followers -- the
  // bookkeeping that lets wrong cross-component edges be found and undone.
  const int c = 3;
  const auto spec = protocols::c_cliques(c);
  const Protocol& p = spec.protocol;
  Simulator sim(p, 12, 5);
  auto counter_index = [&](StateId s) -> int {
    const std::string& name = p.state_name(s);
    if (name.size() >= 2 && name[0] == 'c' && std::isdigit(name[1])) {
      return std::stoi(name.substr(1));
    }
    if (name.size() >= 3 && name.rfind("lv", 0) == 0) return std::stoi(name.substr(2));
    return -1;
  };
  for (int burst = 0; burst < 60; ++burst) {
    sim.run(200);
    for (int u = 0; u < sim.world().size(); ++u) {
      const int index = counter_index(sim.world().state(u));
      if (index < 0) continue;
      int follower_neighbors = 0;
      for (int v : sim.world().active_neighbors(u)) {
        if (counter_index(sim.world().state(v)) >= 0) ++follower_neighbors;
      }
      EXPECT_EQ(follower_neighbors, index - 1)
          << "state " << p.state_name(sim.world().state(u));
    }
  }
}

}  // namespace
}  // namespace netcons
